// The built-in trace sinks of the observability spine.
//
//   * JsonlSink       — one self-contained JSON object per event per line;
//                       the streaming interchange format (mpcsd_cli
//                       --trace-format jsonl), trivially greppable and
//                       round-trip parseable.
//   * ChromeTraceSink — the Chrome trace-event JSON object format
//                       ({"traceEvents": [...]}): spans become "X"
//                       (complete) events, counters "C", instants "i".
//                       Open the file directly in chrome://tracing or
//                       https://ui.perfetto.dev.
//   * AggregateSink   — in-memory rollup: spans aggregate per name
//                       (count / total / min / max duration, last args),
//                       counters per name (count / last / sum).  The perf
//                       suite serialises this summary as BENCH_PR5.json.
//
// Sinks are driven single-threaded (the Recorder serialises dispatch);
// the string/report accessors are meant to be called after the runs being
// traced have completed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace mpcsd::obs {

/// JSON-escapes `s` (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON number: integral values print without a
/// fractional part, everything else with enough digits to round-trip.
std::string json_number(double value);

class JsonlSink : public Sink {
 public:
  void record(const TraceEvent& event) override;

  /// The JSONL text accumulated so far.
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  /// Writes the accumulated text to `path`; false on IO failure.
  bool write_file(const std::string& path) const;
  [[nodiscard]] std::size_t event_count() const noexcept { return events_; }

 private:
  std::string text_;
  std::size_t events_ = 0;
};

class ChromeTraceSink : public Sink {
 public:
  void record(const TraceEvent& event) override;

  /// The complete Chrome trace-event JSON object.
  [[nodiscard]] std::string to_string() const;
  bool write_file(const std::string& path) const;
  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }

 private:
  std::vector<TraceEvent> events_;
};

class AggregateSink : public Sink {
 public:
  struct SpanStats {
    std::string category;
    std::uint64_t count = 0;
    std::uint64_t total_dur_us = 0;
    std::uint64_t min_dur_us = UINT64_MAX;
    std::uint64_t max_dur_us = 0;
    /// The args of the most recent span with this name (benches emit one
    /// uniquely named span per record, so "last" is "the" record).
    std::vector<Arg> last_args;
  };
  struct CounterStats {
    std::uint64_t count = 0;
    double last = 0.0;
    double sum = 0.0;
  };

  void record(const TraceEvent& event) override;

  [[nodiscard]] const std::map<std::string, SpanStats>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::map<std::string, CounterStats>& counters()
      const noexcept {
    return counters_;
  }

  /// {"spans": [...], "counters": [...]} with one row per name.
  [[nodiscard]] std::string to_json() const;
  bool write_file(const std::string& path) const;

 private:
  std::map<std::string, SpanStats> spans_;
  std::map<std::string, CounterStats> counters_;
};

}  // namespace mpcsd::obs
