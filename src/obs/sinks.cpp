#include "obs/sinks.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace mpcsd::obs {

namespace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kCounter:
      return "counter";
    case EventKind::kInstant:
      return "instant";
  }
  return "unknown";
}

/// Chrome trace-event phase of one event kind.
const char* chrome_phase(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "X";
    case EventKind::kCounter:
      return "C";
    case EventKind::kInstant:
      return "i";
  }
  return "i";
}

void append_args_object(std::string& out, const std::vector<Arg>& args) {
  out += '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += json_escape(args[i].key);
    out += "\":";
    out += json_number(args[i].value);
  }
  out += '}';
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(value));
    return buf;
  }
  if (!std::isfinite(value)) return "0";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

void JsonlSink::record(const TraceEvent& event) {
  text_ += "{\"kind\":\"";
  text_ += kind_name(event.kind);
  text_ += "\",\"name\":\"";
  text_ += json_escape(event.name);
  text_ += "\",\"cat\":\"";
  text_ += json_escape(event.category);
  text_ += "\",\"ts_us\":";
  text_ += json_number(static_cast<double>(event.ts_us));
  if (event.kind == EventKind::kSpan) {
    text_ += ",\"dur_us\":";
    text_ += json_number(static_cast<double>(event.dur_us));
  }
  text_ += ",\"track\":";
  text_ += json_number(static_cast<double>(event.track));
  text_ += ",\"args\":";
  append_args_object(text_, event.args);
  text_ += "}\n";
  ++events_;
}

bool JsonlSink::write_file(const std::string& path) const {
  return write_text_file(path, text_);
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

void ChromeTraceSink::record(const TraceEvent& event) {
  events_.push_back(event);
}

std::string ChromeTraceSink::to_string() const {
  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.category.empty() ? "mpcsd" : e.category);
    out += "\",\"ph\":\"";
    out += chrome_phase(e.kind);
    out += "\",\"ts\":";
    out += json_number(static_cast<double>(e.ts_us));
    if (e.kind == EventKind::kSpan) {
      out += ",\"dur\":";
      out += json_number(static_cast<double>(e.dur_us));
    }
    if (e.kind == EventKind::kInstant) {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"pid\":0,\"tid\":";
    out += json_number(static_cast<double>(e.track));
    out += ",\"args\":";
    append_args_object(out, e.args);
    out += '}';
    if (i + 1 < events_.size()) out += ',';
    out += '\n';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool ChromeTraceSink::write_file(const std::string& path) const {
  return write_text_file(path, to_string());
}

// ---------------------------------------------------------------------------
// AggregateSink
// ---------------------------------------------------------------------------

void AggregateSink::record(const TraceEvent& event) {
  if (event.kind == EventKind::kCounter) {
    CounterStats& c = counters_[event.name];
    ++c.count;
    c.last = event.args.empty() ? 0.0 : event.args.front().value;
    c.sum += c.last;
    return;
  }
  // Instants aggregate like zero-duration spans: they still count.
  SpanStats& s = spans_[event.name];
  s.category = event.category;
  ++s.count;
  s.total_dur_us += event.dur_us;
  s.min_dur_us = std::min(s.min_dur_us, event.dur_us);
  s.max_dur_us = std::max(s.max_dur_us, event.dur_us);
  if (!event.args.empty()) s.last_args = event.args;
}

std::string AggregateSink::to_json() const {
  std::string out = "{\"spans\":[\n";
  std::size_t i = 0;
  for (const auto& [name, s] : spans_) {
    out += "  {\"name\":\"";
    out += json_escape(name);
    out += "\",\"cat\":\"";
    out += json_escape(s.category);
    out += "\",\"count\":";
    out += json_number(static_cast<double>(s.count));
    out += ",\"total_us\":";
    out += json_number(static_cast<double>(s.total_dur_us));
    out += ",\"min_us\":";
    out += json_number(static_cast<double>(s.count != 0 ? s.min_dur_us : 0));
    out += ",\"max_us\":";
    out += json_number(static_cast<double>(s.max_dur_us));
    out += ",\"args\":";
    append_args_object(out, s.last_args);
    out += '}';
    if (++i < spans_.size()) out += ',';
    out += '\n';
  }
  out += "],\"counters\":[\n";
  i = 0;
  for (const auto& [name, c] : counters_) {
    out += "  {\"name\":\"";
    out += json_escape(name);
    out += "\",\"count\":";
    out += json_number(static_cast<double>(c.count));
    out += ",\"last\":";
    out += json_number(c.last);
    out += ",\"sum\":";
    out += json_number(c.sum);
    out += '}';
    if (++i < counters_.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool AggregateSink::write_file(const std::string& path) const {
  return write_text_file(path, to_json());
}

}  // namespace mpcsd::obs
