// The structured event model of the observability spine.
//
// Every layer of the simulator — cluster rounds, plan stages, batch
// queries/rungs/passes, solver pipelines, the CLI and the perf suite —
// emits the same three event shapes through an `obs::Recorder`:
//
//   * span    — a named interval (round, stage, solve, escalation pass,
//               per-query share of a shared round) with a start timestamp,
//               a duration, and numeric args (machines, work, bytes, ...);
//   * counter — a named numeric series sample (comm bytes so far, pool
//               queue depth, ...);
//   * instant — a point event (a violation, a retirement decision).
//
// Events carry *wall-clock* observations only.  The model-level quantities
// the paper is judged on (rounds, machines, memory, work, communication)
// stay in `mpc::ExecutionTrace`; the spine is provably metering-neutral —
// attaching or detaching a recorder cannot change `structural_hash()`
// (pinned by tests/test_obs.cpp against the golden scenarios).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpcsd::obs {

enum class EventKind : std::uint8_t {
  kSpan,     ///< interval: [ts_us, ts_us + dur_us]
  kCounter,  ///< series sample: args[0].value at ts_us
  kInstant,  ///< point event at ts_us
};

/// One named numeric argument.  Values are doubles (JSON numbers); the
/// metered quantities attached here are diagnostics — the exact uint64
/// accounting lives in ExecutionTrace.
struct Arg {
  std::string key;
  double value = 0.0;
};

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;   ///< microseconds since the recorder's epoch
  std::uint64_t dur_us = 0;  ///< kSpan only
  /// Rendering lane (the Chrome `tid`): 0 for the driver plane; batch
  /// attribution uses `query + 1` so every query gets its own track.
  std::uint64_t track = 0;
  std::vector<Arg> args;
};

}  // namespace mpcsd::obs
