#include "obs/recorder.hpp"

namespace mpcsd::obs {

void Recorder::add_sink(std::shared_ptr<Sink> sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
  armed_.store(true, std::memory_order_release);
}

void Recorder::emit(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sink : sinks_) sink->record(event);
  events_.fetch_add(1, std::memory_order_relaxed);
}

void Recorder::counter(std::string_view name, std::string_view category,
                       double value, std::uint64_t track) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = EventKind::kCounter;
  event.name.assign(name);
  event.category.assign(category);
  event.ts_us = now_us();
  event.track = track;
  event.args.push_back(Arg{"value", value});
  emit(std::move(event));
}

void Recorder::instant(std::string_view name, std::string_view category,
                       std::vector<Arg> args, std::uint64_t track) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = EventKind::kInstant;
  event.name.assign(name);
  event.category.assign(category);
  event.ts_us = now_us();
  event.track = track;
  event.args = std::move(args);
  emit(std::move(event));
}

void Recorder::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sink : sinks_) sink->flush();
}

}  // namespace mpcsd::obs
