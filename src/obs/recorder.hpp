// The thread-safe recorder at the centre of the observability spine.
//
// A `Recorder` owns an ordered list of pluggable sinks (see obs/sinks.hpp)
// and a monotonic epoch.  Emission sites throughout the simulator hold a
// `Recorder*` that is almost always null or sink-less — both states are the
// *disabled* recorder, and the hot path for them is a single inlined
// pointer-plus-relaxed-atomic check with no allocation, no lock, and no
// string construction (the perf suite's ratio gates run with a sink-less
// recorder wired through every layer to keep that true).  Only when a sink
// is attached do spans materialise names and args and take the dispatch
// lock.
//
// Thread safety: `emit` may be called concurrently from every pool worker
// (machine bodies run under `ThreadPool::parallel_for`); dispatch is
// serialised by an internal mutex, so sinks never need their own locking.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace mpcsd::obs {

/// A pluggable event consumer.  `record` is always called under the
/// recorder's dispatch lock (single-threaded from the sink's view);
/// `flush` is called by `Recorder::flush` and on recorder destruction.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void record(const TraceEvent& event) = 0;
  virtual void flush() {}
};

class Recorder {
 public:
  Recorder() : epoch_(std::chrono::steady_clock::now()) {}
  ~Recorder() { flush(); }

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void add_sink(std::shared_ptr<Sink> sink);

  /// True iff at least one sink is attached.  This is THE hot-path check:
  /// every emission site reads it (inlined, relaxed) before building any
  /// event, so a sink-less recorder costs the same as a null one.
  [[nodiscard]] bool enabled() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the recorder was created (monotonic clock).
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Dispatches `event` to every sink (no-op when disabled).  Layers that
  /// attribute shared intervals (the batch driver's per-query spans) build
  /// the TraceEvent themselves and emit it here.
  void emit(TraceEvent event);

  /// Series sample: `name` takes `value` now.
  void counter(std::string_view name, std::string_view category, double value,
               std::uint64_t track = 0);

  /// Point event with optional args.
  void instant(std::string_view name, std::string_view category,
               std::vector<Arg> args = {}, std::uint64_t track = 0);

  void flush();

  /// Events dispatched so far (to attached sinks).
  [[nodiscard]] std::uint64_t event_count() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> events_{0};
  std::mutex mu_;
  std::vector<std::shared_ptr<Sink>> sinks_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: starts timing at construction, emits one kSpan event at
/// `finish()` (or destruction).  Constructed against a null or disabled
/// recorder it is fully inert — no name copy, no clock read.
class Span {
 public:
  Span() = default;

  Span(Recorder* recorder, std::string_view name, std::string_view category,
       std::uint64_t track = 0) {
    if (recorder != nullptr && recorder->enabled()) {
      recorder_ = recorder;
      event_.kind = EventKind::kSpan;
      event_.name.assign(name);
      event_.category.assign(category);
      event_.track = track;
      event_.ts_us = recorder->now_us();
    }
  }

  Span(Span&& other) noexcept
      : recorder_(std::exchange(other.recorder_, nullptr)),
        event_(std::move(other.event_)) {}
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      recorder_ = std::exchange(other.recorder_, nullptr);
      event_ = std::move(other.event_);
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// True when the span is live (recorder attached and not yet finished).
  [[nodiscard]] explicit operator bool() const noexcept {
    return recorder_ != nullptr;
  }

  /// Attaches a numeric argument (no-op on an inert span); chainable.
  Span& arg(std::string_view key, double value) {
    if (recorder_ != nullptr) {
      event_.args.push_back(Arg{std::string(key), value});
    }
    return *this;
  }

  /// Stamps the duration and emits; idempotent.
  void finish() {
    if (recorder_ == nullptr) return;
    event_.dur_us = recorder_->now_us() - event_.ts_us;
    recorder_->emit(std::move(event_));
    recorder_ = nullptr;
  }

 private:
  Recorder* recorder_ = nullptr;
  TraceEvent event_;
};

}  // namespace mpcsd::obs
