// mpcsd-verify: diagnostic catalog.
//
// One entry per conformance invariant the analyzer proves at the AST /
// token level.  The catalog is the single source of truth shared by the
// portable token engine (always built) and the clang LibTooling engine
// (built when clang dev libraries are present): both must fire the same
// identifiers on the fixture corpus, which the --self-test mode pins.
//
// Identifier scheme:
//   purity-*  machine-body purity (paper §2: machines see only their
//             fragment + inbox; host state is out of reach)
//   det-*     determinism (trace hashes must be backend/worker invariant)
//   conf-*    confinement (AST-grade replacements for the grep rules in
//             scripts/lint.sh; see docs/TOOLING.md for the mapping)
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mpcsd_verify {

enum class DiagId {
  kPurityRefCapture,
  kPurityThisCapture,
  kPurityPointerWrite,
  kDetUnorderedIter,
  kDetWallClock,
  kDetPointerKeyed,
  kConfMutableLambda,
  kConfReinterpretCast,
  kConfWallSeconds,
  kConfIntrinsics,
  kConfProcessPrimitive,
  kConfSocketPrimitive,
  kConfRouterConstant,
  kCount_,
};

struct DiagInfo {
  DiagId id;
  std::string_view name;        ///< stable kebab-case identifier
  std::string_view supersedes;  ///< lint.sh grep rule it replaces ("" if new)
  std::string_view summary;
};

inline constexpr std::array<DiagInfo, static_cast<std::size_t>(DiagId::kCount_)>
    kCatalog{{
        {DiagId::kPurityRefCapture, "purity-ref-capture", "",
         "machine/stage body captures host state by reference (default [&] "
         "or a named non-const reference); capture by value, use the stash, "
         "or make the referenced entity const"},
        {DiagId::kPurityThisCapture, "purity-this-capture", "",
         "machine/stage body captures `this`; the body would read or write "
         "host object state invisible under process isolation"},
        {DiagId::kPurityPointerWrite, "purity-pointer-write", "",
         "machine/stage body writes through a captured pointer; writes to "
         "host memory are inert under the process backend (use the stash)"},
        {DiagId::kDetUnorderedIter, "det-unordered-iter", "",
         "iteration over an unordered container in a machine body or "
         "driver/router scope; bucket order is implementation-defined so "
         "emitted bytes would not be portable across libraries"},
        {DiagId::kDetWallClock, "det-wall-clock", "",
         "direct std::chrono clock read in a machine body or driver/router "
         "scope; wall time flows only through common/timer.hpp Stopwatch "
         "on the host side (metering excludes it)"},
        {DiagId::kDetPointerKeyed, "det-pointer-keyed", "",
         "pointer-keyed associative container or std::hash over a pointer "
         "in a machine body or driver/router scope; iteration/hash order "
         "would depend on allocation addresses"},
        {DiagId::kConfMutableLambda, "conf-mutable-lambda", "rule 3",
         "mutable lambda in simulator/driver code (or any machine body); "
         "mutable captured state is exactly the cross-machine sharing the "
         "runtime auditor exists to catch"},
        {DiagId::kConfReinterpretCast, "conf-reinterpret-cast", "rule 4",
         "reinterpret_cast outside common/bytes.hpp or the SIMD kernel "
         "TUs; route bytes through ByteWriter/ByteReader"},
        {DiagId::kConfWallSeconds, "conf-wall-seconds", "rule 6",
         "RoundReport::wall_seconds written outside src/obs/, "
         "src/mpc/cluster.cpp, src/mpc/stats.cpp; route timing through "
         "the observability spine"},
        {DiagId::kConfIntrinsics, "conf-intrinsics", "rule 7",
         "intrinsics header outside src/seq/*_simd*.cpp and "
         "src/common/cpu.*; keep ISA-specific code behind the dispatch "
         "boundary"},
        {DiagId::kConfProcessPrimitive, "conf-process-primitive", "rule 8",
         "process/shared-memory primitive outside "
         "src/mpc/backend_process.cpp and src/mpc/transport_socket.cpp; "
         "keep isolation in the backend boundary"},
        {DiagId::kConfSocketPrimitive, "conf-socket-primitive", "rule 8b",
         "socket primitive outside src/mpc/transport_socket.cpp; network "
         "bytes go through the socket transport boundary"},
        {DiagId::kConfRouterConstant, "conf-router-constant", "rule 9",
         "kRouter* constant outside src/core/router.*; cost-model knobs "
         "stay in the router boundary"},
    }};

[[nodiscard]] constexpr const DiagInfo& info(DiagId id) {
  return kCatalog[static_cast<std::size_t>(id)];
}

[[nodiscard]] constexpr std::string_view name_of(DiagId id) {
  return info(id).name;
}

/// Parses a catalog name back to its id; returns false if unknown.
[[nodiscard]] inline bool parse_diag_name(std::string_view name, DiagId* out) {
  for (const DiagInfo& d : kCatalog) {
    if (d.name == name) {
      *out = d.id;
      return true;
    }
  }
  return false;
}

/// One finding: where and what.  `detail` names the offending entity
/// (captured variable, container, constant) for the human report.
struct Diagnostic {
  DiagId id{};
  std::string file;
  unsigned line = 0;
  std::string detail;
};

using Diagnostics = std::vector<Diagnostic>;

}  // namespace mpcsd_verify
