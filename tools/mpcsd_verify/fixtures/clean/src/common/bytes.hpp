// Clean fixture: mirrors src/common/bytes.hpp, the one header allowed to
// reinterpret_cast (the serialization boundary).  Must produce no findings.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace mpcsd {

inline std::uint32_t load_u32(const std::uint8_t* p) {
  return *reinterpret_cast<const std::uint32_t*>(p);
}

inline void store_u32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, reinterpret_cast<const std::uint8_t*>(&v), sizeof(v));
}

}  // namespace mpcsd
