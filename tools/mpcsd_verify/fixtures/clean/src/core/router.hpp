// Clean fixture: mirrors src/core/router.hpp, the owner of kRouter*
// cost-model constants.  Must produce no findings.
#pragma once

namespace mpcsd {

inline constexpr double kRouterCrossoverSlope = 1.75;
inline constexpr double kRouterProbeBudget = 64.0;

inline double router_score(double cost) { return cost * kRouterCrossoverSlope; }

}  // namespace mpcsd
