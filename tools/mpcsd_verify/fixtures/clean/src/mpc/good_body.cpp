// Clean fixture: the idioms the analyzer must NOT flag.
//   - machine bodies with explicit by-value captures
//   - a reference capture of a const local (read-only sharing is fine)
//   - unordered_map *lookup* (find/count) without iteration
//   - keyword-looking text inside strings and comments (grep's blind spot)
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

// A comment may discuss reinterpret_cast or fork() freely.
void value_captures(int machines, std::uint64_t seed) {
  const std::uint64_t salt = seed * 2654435761u;
  run_machines(machines, [seed, &salt](MachineContext& ctx) {
    std::unordered_map<std::uint64_t, std::uint64_t> cache;
    cache[seed] = salt;
    const auto it = cache.find(static_cast<std::uint64_t>(ctx.machine_id));
    if (it != cache.end()) ctx.charge_work(it->second);
    const std::string log = "never call fork() or mmap() here";
    ctx.charge_work(log.size());
  });
}

void stage_body(const std::vector<std::uint32_t>& inputs, std::uint32_t bias) {
  run_stage<std::uint32_t>(inputs, [bias](StageContext<std::uint32_t>& stage) {
    stage.emit(0, bias);
  });
}

}  // namespace mpc
