// Clean fixture: mirrors src/mpc/transport_socket.cpp, the only TU
// allowed socket primitives (and, like the process backend, fork — it
// spawns its connect-back workers).  Must produce no findings.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mpc {

int open_listener() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in sa{};
  bind(fd, static_cast<const sockaddr*>(static_cast<const void*>(&sa)),
       sizeof(sa));
  listen(fd, 16);
  return accept4(fd, nullptr, nullptr, 0);
}

int dial(const sockaddr_in& sa) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  connect(fd, static_cast<const sockaddr*>(static_cast<const void*>(&sa)),
          sizeof(sa));
  return fd;
}

int spawn_worker() { return fork(); }

}  // namespace mpc
