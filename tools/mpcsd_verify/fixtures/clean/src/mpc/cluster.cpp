// Clean fixture: mirrors src/mpc/cluster.cpp, part of the observability
// spine — it may stamp RoundReport::wall_seconds and read host clocks on
// the host side (outside machine bodies).  Must produce no findings.
#include <chrono>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

void finish_round(RoundReport& report,
                  std::chrono::steady_clock::time_point t0) {
  const auto t1 = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace mpc
