// Clean fixture: mirrors src/mpc/backend_process.cpp, the only TU allowed
// process and shared-memory primitives.  Must produce no findings.
#include <sys/mman.h>
#include <unistd.h>

#include <cstddef>

namespace mpc {

void* map_shared(std::size_t bytes) {
  return mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
              MAP_SHARED | MAP_ANONYMOUS, -1, 0);
}

int spawn_worker() { return fork(); }

void unmap_shared(void* p, std::size_t bytes) { munmap(p, bytes); }

}  // namespace mpc
