// Clean fixture: the plan.hpp glue idiom — a const Stage is captured by
// reference in the MachineContext adapter lambda.  The referent is const,
// so the capture is read-only sharing and allowed.
#include <cstdint>
#include <vector>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

struct StageSpec {
  std::uint32_t fanout = 1;
};

void run_spec(int machines, const StageSpec& stage) {
  run_machines(machines, [&stage](MachineContext& ctx) {
    ctx.charge_work(stage.fanout);
  });
}

}  // namespace mpc
