// Clean fixture: mirrors a SIMD kernel TU (src/seq/*_simd*.cpp), which is
// allowed both the intrinsics header and reinterpret_cast over its own
// buffers.  Must produce no findings.
#include <immintrin.h>

#include <cstdint>

namespace mpcsd {

std::uint64_t lane_bytes(const std::uint64_t* words) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(words);
  return static_cast<std::uint64_t>(bytes[0]);
}

}  // namespace mpcsd
