// Fixture: unordered iteration in driver code (file-wide determinism
// scope: everything under src/edit_mpc/ shapes machine inputs).
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace mpcsd {

std::vector<std::int32_t> collect_representatives(
    const std::vector<std::int32_t>& blocks) {
  std::unordered_set<std::int32_t> reps_needed;
  for (const std::int32_t b : blocks) reps_needed.insert(b / 2);
  std::vector<std::int32_t> out;
  for (const std::int32_t r : reps_needed) {  // mpcsd-expect: det-unordered-iter
    out.push_back(r);
  }
  return out;
}

}  // namespace mpcsd
