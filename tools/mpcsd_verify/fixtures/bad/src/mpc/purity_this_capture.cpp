// Fixture: machine body capturing `this` — host object state would be
// silently divergent under the process backend.
#include <cstdint>
#include <vector>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

class Solver {
 public:
  void run(int machines) {
    run_machines(machines, [this](MachineContext& ctx) {  // mpcsd-expect: purity-this-capture
      seen_ += static_cast<std::uint64_t>(ctx.machine_id);
    });
  }

 private:
  std::uint64_t seen_ = 0;
};

}  // namespace mpc
