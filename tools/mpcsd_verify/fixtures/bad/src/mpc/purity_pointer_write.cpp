// Fixture: machine body writing through a by-value captured pointer.
// The capture itself is a copy, but the write lands in host memory — inert
// under process isolation, a data race under threads.
#include <cstdint>
#include <vector>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

void pointer_write(int machines, std::vector<std::uint64_t>* sink) {
  run_machines(machines, [sink](MachineContext& ctx) {
    sink->push_back(static_cast<std::uint64_t>(ctx.machine_id));  // mpcsd-expect: purity-pointer-write
  });
}

}  // namespace mpc
