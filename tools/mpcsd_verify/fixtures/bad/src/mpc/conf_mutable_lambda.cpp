// Fixture: mutable lambda in simulator code (lint rule 3 scope).  Mutable
// captured state is cross-call sharing the machine model forbids.
#include <cstdint>
#include <vector>

namespace mpc {

std::uint64_t sum_with_mutable(const std::vector<std::uint64_t>& xs) {
  std::uint64_t total = 0;
  auto acc = [total](std::uint64_t x) mutable {  // mpcsd-expect: conf-mutable-lambda
    total += x;
    return total;
  };
  for (const std::uint64_t x : xs) total = acc(x);
  return total;
}

}  // namespace mpc
