// Fixture: direct clock read inside a machine body.  Wall time is host
// observability; inside a body it leaks scheduling order into emitted data.
#include <chrono>
#include <cstdint>
#include <vector>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

void timed_body(int machines) {
  run_machines(machines, [](MachineContext& ctx) {
    const auto t0 = std::chrono::steady_clock::now();  // mpcsd-expect: det-wall-clock
    ctx.charge_work(static_cast<std::uint64_t>(t0.time_since_epoch().count() & 1));
  });
}

}  // namespace mpc
