// Fixture: pointer-keyed ordered container inside a machine body —
// "ordered" by allocation address, which is not an order at all across
// runs or backends.
#include <cstdint>
#include <map>
#include <vector>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

void pointer_keyed_body(int machines, std::vector<std::uint64_t>& cells) {
  const std::vector<std::uint64_t>* base = &cells;
  run_machines(machines, [base](MachineContext& ctx) {
    std::map<const std::uint64_t*, int> by_addr;  // mpcsd-expect: det-pointer-keyed
    by_addr[base->data() + ctx.machine_id] = ctx.machine_id;
    ctx.charge_work(by_addr.size());
  });
}

}  // namespace mpc
