// Fixture: machine bodies that capture host state by reference.
#include <cstdint>
#include <vector>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

void blanket_ref_capture(int machines) {
  std::vector<std::uint64_t> totals(static_cast<std::size_t>(machines));
  run_machines(machines, [&](MachineContext& ctx) {  // mpcsd-expect: purity-ref-capture
    totals[static_cast<std::size_t>(ctx.machine_id)] += 1;
  });
}

void named_ref_capture(int machines) {
  std::uint64_t accumulator = 0;
  run_machines(machines, [&accumulator](MachineContext& ctx) {  // mpcsd-expect: purity-ref-capture
    accumulator += static_cast<std::uint64_t>(ctx.machine_id);
  });
}

}  // namespace mpc
