// Fixture: iterating an unordered container inside a machine body.
// Lookups (find / contains / count) are fine; iteration order is not.
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "../../../support/mpcsd_mock.hpp"

namespace mpc {

void emit_histogram(int machines) {
  run_machines(machines, [](MachineContext& ctx) {
    std::unordered_map<std::uint32_t, std::uint32_t> counts;
    counts[static_cast<std::uint32_t>(ctx.machine_id)] += 1;
    std::vector<std::uint8_t> out;
    for (const auto& kv : counts) {  // mpcsd-expect: det-unordered-iter
      out.push_back(static_cast<std::uint8_t>(kv.second));
    }
    ctx.emit(0, out);
  });
}

}  // namespace mpc
