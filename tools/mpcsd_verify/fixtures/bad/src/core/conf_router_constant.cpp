// Fixture: a kRouter* cost-model constant declared outside
// src/core/router.* — the router owns every knob the query planner reads.
#include <cstdint>

namespace mpcsd {

inline constexpr double kRouterCrossoverSlope = 1.75;  // mpcsd-expect: conf-router-constant

double score(double candidate_cost) {
  return candidate_cost * kRouterCrossoverSlope;  // mpcsd-expect: conf-router-constant
}

}  // namespace mpcsd
