// Fixture: process/shared-memory primitive outside backend_process.cpp.
// Isolation machinery lives behind the backend boundary only.
#include <unistd.h>

namespace mpcsd {

int spawn_helper() {
  return fork();  // mpcsd-expect: conf-process-primitive
}

}  // namespace mpcsd
