// Fixture: writing RoundReport::wall_seconds outside the observability
// spine (src/obs/, cluster.cpp, stats.cpp).
#include "../../../support/mpcsd_mock.hpp"

namespace mpcsd {

void stamp_report(mpc::RoundReport& report, double seconds) {
  report.wall_seconds = seconds;  // mpcsd-expect: conf-wall-seconds
}

}  // namespace mpcsd
