// Fixture: socket primitives outside transport_socket.cpp.  Network
// bytes cross the machine boundary only through the socket transport,
// so every raw socket syscall elsewhere is a framing bypass.
// std::bind below is the classic homonym and must NOT fire.
#include <netinet/in.h>
#include <sys/socket.h>

#include <functional>

namespace mpcsd {

inline int add(int a, int b) { return a + b; }

int open_side_channel() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);  // mpcsd-expect: conf-socket-primitive
  sockaddr_in sa{};
  bind(fd, static_cast<const sockaddr*>(static_cast<const void*>(&sa)),  // mpcsd-expect: conf-socket-primitive
       sizeof(sa));
  listen(fd, 1);  // mpcsd-expect: conf-socket-primitive
  connect(fd, static_cast<const sockaddr*>(static_cast<const void*>(&sa)),  // mpcsd-expect: conf-socket-primitive
          sizeof(sa));
  auto later = std::bind(add, 1, 2);  // homonym: no finding
  return fd + later();
}

}  // namespace mpcsd
