// Fixture: reinterpret_cast outside the serialization boundary
// (common/bytes.hpp) and the SIMD kernel TUs.
#include <cstdint>
#include <vector>

namespace mpcsd {

std::uint32_t first_word(const std::vector<std::uint8_t>& bytes) {
  return *reinterpret_cast<const std::uint32_t*>(bytes.data());  // mpcsd-expect: conf-reinterpret-cast
}

}  // namespace mpcsd
