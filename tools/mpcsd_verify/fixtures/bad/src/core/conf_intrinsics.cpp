// Fixture: raw intrinsics header outside the SIMD kernel TUs and the CPU
// dispatch boundary.
#include <immintrin.h>  // mpcsd-expect: conf-intrinsics

#include <cstdint>

namespace mpcsd {

std::uint64_t popcount_word(std::uint64_t w) {
  std::uint64_t count = 0;
  while (w != 0) {
    w &= w - 1;
    ++count;
  }
  return count;
}

}  // namespace mpcsd
