// Fixture scaffolding: just enough of the mpcsd MPC surface for the
// fixtures to compile standalone under the clang AST engine.  The token
// engine never includes headers, so this file is invisible to it; the
// directory name "support" is skipped by the fixture walker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpc {

struct MachineContext {
  int machine_id = 0;
  void emit(int dst, const std::vector<std::uint8_t>& bytes);
  void charge_work(std::uint64_t units);
  void stash_append(const std::vector<std::uint8_t>& bytes);
};

template <typename In>
struct StageContext {
  int machine_id = 0;
  const std::vector<In>& inputs() const;
  void emit(int dst, const In& value);
};

struct RoundReport {
  double wall_seconds = 0.0;
  std::uint64_t total_work = 0;
};

/// Accepts any machine/stage body (fixtures only exercise the signature).
template <typename Body>
void run_machines(int machines, Body body) {
  MachineContext ctx;
  for (int i = 0; i < machines; ++i) {
    ctx.machine_id = i;
    body(ctx);
  }
}

template <typename In, typename Body>
void run_stage(const std::vector<In>& inputs, Body body) {
  StageContext<In> ctx;
  (void)inputs;
  body(ctx);
}

}  // namespace mpc
