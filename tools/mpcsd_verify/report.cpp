#include "report.hpp"

#include <fstream>

namespace mpcsd_verify {
namespace {

void append_json_string(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(hex[(c >> 4) & 0xF]);
          out->push_back(hex[c & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string render_json_report(const Diagnostics& diags, std::string_view engine,
                               std::size_t files) {
  std::string out;
  out += "{\n  \"tool\": \"mpcsd_verify\",\n  \"engine\": ";
  append_json_string(&out, engine);
  out += ",\n  \"files\": " + std::to_string(files);
  out += ",\n  \"findings\": " + std::to_string(diags.size());
  out += ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"id\": ";
    append_json_string(&out, name_of(d.id));
    out += ", \"file\": ";
    append_json_string(&out, d.file);
    out += ", \"line\": " + std::to_string(d.line);
    out += ", \"detail\": ";
    append_json_string(&out, d.detail);
    out += ", \"supersedes\": ";
    append_json_string(&out, info(d.id).supersedes);
    out += "}";
  }
  out += diags.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool write_file(const std::string& path, std::string_view contents) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(f);
}

}  // namespace mpcsd_verify
