// mpcsd-verify: report output.
//
// Human-readable findings go to stderr/stdout from main; this module writes
// the machine-readable JSON report that CI uploads as an artifact.
#pragma once

#include <string>
#include <string_view>

#include "diagnostics.hpp"

namespace mpcsd_verify {

/// Renders the full run as a JSON document.  `engine` is "token" or "ast";
/// `files` is the number of files analyzed.
[[nodiscard]] std::string render_json_report(const Diagnostics& diags,
                                             std::string_view engine,
                                             std::size_t files);

/// Writes `contents` to `path`; returns false on I/O failure.
[[nodiscard]] bool write_file(const std::string& path, std::string_view contents);

}  // namespace mpcsd_verify
