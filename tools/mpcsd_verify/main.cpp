// mpcsd-verify: conformance analyzer for machine-body purity, determinism,
// and metering/confinement invariants.
//
// Usage:
//   mpcsd_verify [options] <file-or-dir>...
//   mpcsd_verify --self-test <fixtures-dir>
//   mpcsd_verify --list
//
// Options:
//   --engine auto|token|ast   engine selection (default auto: ast when the
//                             binary was built with clang tooling, else token)
//   --compdb <dir>            compile_commands.json directory (ast engine)
//   --report <path>           write a JSON report
//   --quiet                   suppress per-finding lines (exit code only)
//
// Exit codes: 0 clean, 1 findings (or self-test mismatch), 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ast_engine.hpp"
#include "diagnostics.hpp"
#include "policy.hpp"
#include "report.hpp"
#include "token_engine.hpp"

namespace fs = std::filesystem;
using namespace mpcsd_verify;

namespace {

struct Options {
  std::string engine = "auto";
  std::string compdb;
  std::string report_path;
  std::string self_test_dir;
  bool list = false;
  bool quiet = false;
  std::vector<std::string> inputs;
};

[[nodiscard]] bool has_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx" || ext == ".hxx";
}

/// Recursively collects source files; directories named "support" hold
/// fixture scaffolding (mock headers) and are skipped.
void collect_files(const fs::path& root, std::vector<std::string>* out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out->push_back(root.string());
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec) && it->path().filename() == "support") {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file(ec) && has_source_ext(it->path())) {
      out->push_back(it->path().string());
    }
  }
  std::sort(out->begin(), out->end());
}

[[nodiscard]] bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

[[nodiscard]] std::string resolve_engine(const std::string& requested) {
  if (requested == "token" || requested == "ast") return requested;
  return ast_engine_available() ? "ast" : "token";
}

/// Runs the chosen engine over `files`, appending to `diags`.
[[nodiscard]] bool analyze(const std::vector<std::string>& files,
                           const std::string& engine, const std::string& compdb,
                           Diagnostics* diags) {
  if (engine == "ast") {
    return analyze_files_ast(files, compdb, diags);
  }
  for (const std::string& path : files) {
    std::string source;
    if (!read_file(path, &source)) {
      std::fprintf(stderr, "mpcsd_verify: cannot read %s\n", path.c_str());
      return false;
    }
    Diagnostics d = analyze_file_tokens(path, source);
    diags->insert(diags->end(), d.begin(), d.end());
  }
  return true;
}

void print_findings(const Diagnostics& diags) {
  for (const Diagnostic& d : diags) {
    const DiagInfo& di = info(d.id);
    std::fprintf(stderr, "%s:%u: [%.*s] %s%s%s\n", d.file.c_str(), d.line,
                 static_cast<int>(di.name.size()), di.name.data(),
                 d.detail.c_str(), d.detail.empty() ? "" : " — ",
                 std::string(di.summary).c_str());
  }
}

/// Parses `// mpcsd-expect: <id> [<id>...]` annotations.  The expected
/// diagnostic line is the annotation's own line.
[[nodiscard]] bool parse_expectations(const std::string& source,
                                      const std::string& path,
                                      std::multiset<std::pair<std::string, unsigned>>* out) {
  std::istringstream ss(source);
  std::string linetext;
  unsigned lineno = 0;
  bool ok = true;
  while (std::getline(ss, linetext)) {
    ++lineno;
    const std::string marker = "mpcsd-expect:";
    const auto pos = linetext.find(marker);
    if (pos == std::string::npos) continue;
    std::istringstream names(linetext.substr(pos + marker.size()));
    std::string name;
    while (names >> name) {
      DiagId id{};
      if (!parse_diag_name(name, &id)) {
        std::fprintf(stderr, "%s:%u: unknown diagnostic in annotation: %s\n",
                     path.c_str(), lineno, name.c_str());
        ok = false;
        continue;
      }
      out->emplace(name, lineno);
    }
  }
  return ok;
}

/// Self-test: each fixture file must produce exactly its annotated
/// multiset of (diagnostic, line) — no more, no less.  Clean fixtures
/// simply carry no annotations.
[[nodiscard]] int run_self_test(const Options& opt) {
  std::vector<std::string> files;
  collect_files(opt.self_test_dir, &files);
  if (files.empty()) {
    std::fprintf(stderr, "mpcsd_verify: no fixtures under %s\n",
                 opt.self_test_dir.c_str());
    return 2;
  }
  const std::string engine = resolve_engine(opt.engine);
  if (opt.engine == "ast" && !ast_engine_available()) {
    std::fprintf(stderr, "mpcsd_verify: ast engine not built in\n");
    return 2;
  }

  std::size_t failures = 0;
  for (const std::string& path : files) {
    std::string source;
    if (!read_file(path, &source)) {
      std::fprintf(stderr, "mpcsd_verify: cannot read %s\n", path.c_str());
      return 2;
    }
    std::multiset<std::pair<std::string, unsigned>> expected;
    if (!parse_expectations(source, path, &expected)) return 2;

    Diagnostics diags;
    if (!analyze({path}, engine, opt.compdb, &diags)) return 2;
    std::multiset<std::pair<std::string, unsigned>> actual;
    for (const Diagnostic& d : diags) {
      actual.emplace(std::string(name_of(d.id)), d.line);
    }
    if (actual == expected) continue;
    ++failures;
    std::fprintf(stderr, "FAIL %s (engine=%s)\n", path.c_str(), engine.c_str());
    for (const auto& [name, line] : expected) {
      if (actual.count({name, line}) < expected.count({name, line})) {
        std::fprintf(stderr, "  missing: %s at line %u\n", name.c_str(), line);
      }
    }
    for (const auto& [name, line] : actual) {
      if (expected.count({name, line}) < actual.count({name, line})) {
        std::fprintf(stderr, "  unexpected: %s at line %u\n", name.c_str(), line);
      }
    }
  }
  std::fprintf(stderr, "mpcsd_verify self-test: %zu fixture(s), %zu failure(s), engine=%s\n",
               files.size(), failures, engine.c_str());
  return failures == 0 ? 0 : 1;
}

void print_catalog() {
  std::printf("mpcsd_verify diagnostic catalog (%zu):\n", kCatalog.size());
  for (const DiagInfo& d : kCatalog) {
    std::printf("  %-24.*s %s%.*s%s\n      %.*s\n",
                static_cast<int>(d.name.size()), d.name.data(),
                d.supersedes.empty() ? "" : "[supersedes lint.sh ",
                static_cast<int>(d.supersedes.size()), d.supersedes.data(),
                d.supersedes.empty() ? "" : "]",
                static_cast<int>(d.summary.size()), d.summary.data());
  }
}

[[nodiscard]] int usage() {
  std::fprintf(stderr,
               "usage: mpcsd_verify [--engine auto|token|ast] [--compdb DIR] "
               "[--report PATH] [--quiet] <file-or-dir>...\n"
               "       mpcsd_verify --self-test <fixtures-dir> [--engine ...]\n"
               "       mpcsd_verify --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.engine = v;
      if (opt.engine != "auto" && opt.engine != "token" && opt.engine != "ast")
        return usage();
    } else if (arg == "--compdb") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.compdb = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.report_path = v;
    } else if (arg == "--self-test") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.self_test_dir = v;
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opt.inputs.push_back(arg);
    }
  }

  if (opt.list) {
    print_catalog();
    return 0;
  }
  if (!opt.self_test_dir.empty()) return run_self_test(opt);
  if (opt.inputs.empty()) return usage();

  std::vector<std::string> files;
  for (const std::string& in : opt.inputs) collect_files(in, &files);
  if (files.empty()) {
    std::fprintf(stderr, "mpcsd_verify: no source files found\n");
    return 2;
  }

  const std::string engine = resolve_engine(opt.engine);
  if (opt.engine == "ast" && !ast_engine_available()) {
    std::fprintf(stderr, "mpcsd_verify: ast engine not built in\n");
    return 2;
  }

  Diagnostics diags;
  if (!analyze(files, engine, opt.compdb, &diags)) return 2;
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });

  if (!opt.quiet) print_findings(diags);
  if (!opt.report_path.empty()) {
    if (!write_file(opt.report_path, render_json_report(diags, engine, files.size()))) {
      std::fprintf(stderr, "mpcsd_verify: cannot write %s\n", opt.report_path.c_str());
      return 2;
    }
  }
  std::fprintf(stderr, "mpcsd_verify: %zu file(s), %zu finding(s), engine=%s\n",
               files.size(), diags.size(), engine.c_str());
  return diags.empty() ? 0 : 1;
}
