// mpcsd-verify: clang LibTooling engine.
//
// Compiled only when clang development libraries are present (see
// CMakeLists.txt); written against the clang 14 API with version guards
// for the Preprocessor callback signature changes in 16/17.  The engine
// mirrors the token engine's catalog with real semantics: capture
// const-ness comes from the type system, machine bodies from the call
// operator's parameter types, container identity from the template
// specialization — so macro tricks, typedef chains, and using-directives
// cannot hide a violation the way they can from a token scan.
//
// Files without a compile command (headers, when running against a
// compile_commands.json) are analyzed with the token engine instead, so a
// directory sweep never hard-fails on an uncompilable TU.
#include "ast_engine.hpp"

#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Basic/Version.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/raw_ostream.h"

#include <fstream>
#include <sstream>

#include "policy.hpp"
#include "token_engine.hpp"

namespace mpcsd_verify {
namespace {

using clang::ASTContext;
using clang::CXXMethodDecl;
using clang::CXXRecordDecl;
using clang::LambdaExpr;
using clang::QualType;
using clang::SourceLocation;
using clang::SourceManager;
using clang::VarDecl;

[[nodiscard]] bool is_unordered_name(llvm::StringRef name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

[[nodiscard]] bool is_assoc_name(llvm::StringRef name) {
  return name == "map" || name == "set" || name == "multimap" ||
         name == "multiset" || is_unordered_name(name);
}

/// Record decl of `t` after stripping references/sugar; null if not a class.
[[nodiscard]] const CXXRecordDecl* record_of(QualType t) {
  return t.getNonReferenceType().getDesugaredType(t->getASTContext())
      ->getAsCXXRecordDecl();
}

class Visitor : public clang::RecursiveASTVisitor<Visitor> {
 public:
  Visitor(ASTContext& ctx, std::string path, Diagnostics* out)
      : sm_(ctx.getSourceManager()), path_(std::move(path)), out_(out) {
    det_file_ = Policy::det_scoped_file(path_);
    lint_scoped_ = Policy::in_lint_sources(path_);
    mutable_scoped_ = Policy::mutable_scoped(path_);
  }

  bool shouldVisitTemplateInstantiations() const { return false; }
  bool shouldVisitImplicitCode() const { return false; }

  // --- scope tracking ------------------------------------------------------

  bool TraverseLambdaExpr(LambdaExpr* lam) {
    const bool machine = is_machine_body(lam);
    if (machine) check_machine_captures(lam);
    check_mutable(lam, machine);
    machine_depth_ += machine ? 1 : 0;
    const bool ok =
        clang::RecursiveASTVisitor<Visitor>::TraverseLambdaExpr(lam);
    machine_depth_ -= machine ? 1 : 0;
    return ok;
  }

  // --- determinism ---------------------------------------------------------

  bool VisitCXXForRangeStmt(clang::CXXForRangeStmt* stmt) {
    if (!det_scope()) return true;
    const clang::Expr* range = stmt->getRangeInit();
    if (range == nullptr) return true;
    const CXXRecordDecl* rec = record_of(range->getType());
    if (rec != nullptr && is_unordered_name(rec->getName()) &&
        in_main_file(range->getBeginLoc())) {
      diag(DiagId::kDetUnorderedIter, range->getBeginLoc(),
           rec->getName().str());
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const CXXMethodDecl* method = call->getMethodDecl();
    if (method == nullptr || !in_main_file(call->getBeginLoc())) return true;
    const llvm::StringRef name = method->getName();
    if (det_scope() && (name == "begin" || name == "cbegin")) {
      const CXXRecordDecl* rec = record_of(call->getImplicitObjectArgument()
                                               ->IgnoreParenImpCasts()
                                               ->getType());
      if (rec != nullptr && is_unordered_name(rec->getName())) {
        diag(DiagId::kDetUnorderedIter, call->getBeginLoc(),
             rec->getName().str() + ".begin()");
      }
    }
    // Mutating member call through a by-value captured pointer.
    if (!pointer_captures_.empty() && is_mutator(name)) {
      const clang::Expr* base =
          call->getImplicitObjectArgument()->IgnoreParenImpCasts();
      if (const auto* deref = llvm::dyn_cast<clang::UnaryOperator>(base)) {
        if (deref->getOpcode() == clang::UO_Deref)
          base = deref->getSubExpr()->IgnoreParenImpCasts();
      }
      if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(base)) {
        if (pointer_captures_.count(ref->getDecl()) > 0) {
          diag(DiagId::kPurityPointerWrite, call->getBeginLoc(),
               ref->getDecl()->getNameAsString() + "->" + name.str());
        }
      }
    }
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || !in_main_file(call->getBeginLoc())) return true;
    const std::string qual = callee->getQualifiedNameAsString();
    if (det_scope() && callee->getName() == "now" &&
        (qual.find("steady_clock") != std::string::npos ||
         qual.find("system_clock") != std::string::npos ||
         qual.find("high_resolution_clock") != std::string::npos)) {
      diag(DiagId::kDetWallClock, call->getBeginLoc(), qual + "()");
    }
    if (lint_scoped_ && !Policy::allow_process_primitives(path_) &&
        !llvm::isa<clang::CXXMemberCallExpr>(call)) {
      static const std::set<std::string> prims = {
          "fork",         "vfork",    "mmap",       "munmap",
          "memfd_create", "shm_open", "shm_unlink",
      };
      if (callee->getDeclContext()->getRedeclContext()->isTranslationUnit() &&
          prims.count(callee->getNameAsString()) > 0) {
        diag(DiagId::kConfProcessPrimitive, call->getBeginLoc(),
             callee->getNameAsString() + "()");
      }
    }
    if (lint_scoped_ && !Policy::allow_socket_primitives(path_) &&
        !llvm::isa<clang::CXXMemberCallExpr>(call)) {
      // Requiring the callee to live at translation-unit scope rules out
      // std::bind and namespaced connect/bind homonyms by construction.
      static const std::set<std::string> sock_prims = {
          "socket", "bind", "listen", "accept", "accept4", "connect",
      };
      if (callee->getDeclContext()->getRedeclContext()->isTranslationUnit() &&
          sock_prims.count(callee->getNameAsString()) > 0) {
        diag(DiagId::kConfSocketPrimitive, call->getBeginLoc(),
             callee->getNameAsString() + "()");
      }
    }
    return true;
  }

  bool VisitVarDecl(VarDecl* var) {
    if (!in_main_file(var->getLocation())) return true;
    // Pointer-keyed associative containers in determinism scope.
    if (det_scope()) {
      const auto* spec =
          llvm::dyn_cast_or_null<clang::ClassTemplateSpecializationDecl>(
              record_of(var->getType()));
      if (spec != nullptr && is_assoc_name(spec->getName())) {
        const auto& args = spec->getTemplateArgs();
        if (args.size() > 0 &&
            args[0].getKind() == clang::TemplateArgument::Type &&
            args[0].getAsType()->isPointerType()) {
          diag(DiagId::kDetPointerKeyed, var->getLocation(), "pointer key");
        }
      }
    }
    if (lint_scoped_ && !Policy::allow_router_constants(path_) &&
        var->getName().startswith("kRouter")) {
      diag(DiagId::kConfRouterConstant, var->getLocation(),
           var->getNameAsString());
    }
    return true;
  }

  bool VisitDeclRefExpr(clang::DeclRefExpr* ref) {
    if (!in_main_file(ref->getBeginLoc())) return true;
    if (lint_scoped_ && !Policy::allow_router_constants(path_) &&
        ref->getDecl()->getName().startswith("kRouter")) {
      diag(DiagId::kConfRouterConstant, ref->getBeginLoc(),
           ref->getDecl()->getNameAsString());
    }
    return true;
  }

  // --- confinement ---------------------------------------------------------

  bool VisitCXXReinterpretCastExpr(clang::CXXReinterpretCastExpr* cast) {
    if (lint_scoped_ && !Policy::allow_reinterpret_cast(path_) &&
        in_main_file(cast->getBeginLoc())) {
      diag(DiagId::kConfReinterpretCast, cast->getBeginLoc(), "");
    }
    return true;
  }

  bool VisitBinaryOperator(clang::BinaryOperator* op) {
    if (!op->isAssignmentOp() && !op->isCompoundAssignmentOp()) return true;
    if (!in_main_file(op->getBeginLoc())) return true;
    const auto* member = llvm::dyn_cast<clang::MemberExpr>(
        op->getLHS()->IgnoreParenImpCasts());
    if (member != nullptr) {
      if (lint_scoped_ && !Policy::allow_wall_seconds(path_) &&
          member->getMemberDecl()->getName() == "wall_seconds") {
        diag(DiagId::kConfWallSeconds, op->getBeginLoc(), "wall_seconds write");
      }
      // Write through a by-value captured pointer: p->field = ...
      if (!pointer_captures_.empty() && member->isArrow()) {
        const auto* base = llvm::dyn_cast<clang::DeclRefExpr>(
            member->getBase()->IgnoreParenImpCasts());
        if (base != nullptr && pointer_captures_.count(base->getDecl()) > 0) {
          diag(DiagId::kPurityPointerWrite, op->getBeginLoc(),
               base->getDecl()->getNameAsString() + "->...");
        }
      }
    }
    // *p = ...
    const auto* deref = llvm::dyn_cast<clang::UnaryOperator>(
        op->getLHS()->IgnoreParenImpCasts());
    if (deref != nullptr && deref->getOpcode() == clang::UO_Deref &&
        !pointer_captures_.empty()) {
      const auto* base = llvm::dyn_cast<clang::DeclRefExpr>(
          deref->getSubExpr()->IgnoreParenImpCasts());
      if (base != nullptr && pointer_captures_.count(base->getDecl()) > 0) {
        diag(DiagId::kPurityPointerWrite, op->getBeginLoc(),
             "*" + base->getDecl()->getNameAsString());
      }
    }
    return true;
  }

 private:
  [[nodiscard]] bool det_scope() const { return det_file_ || machine_depth_ > 0; }

  [[nodiscard]] bool in_main_file(SourceLocation loc) const {
    return sm_.isWrittenInMainFile(sm_.getExpansionLoc(loc));
  }

  [[nodiscard]] static bool is_mutator(llvm::StringRef name) {
    return name == "push_back" || name == "emplace_back" || name == "insert" ||
           name == "emplace" || name == "clear" || name == "erase" ||
           name == "resize" || name == "assign" || name == "pop_back" ||
           name == "reserve";
  }

  void diag(DiagId id, SourceLocation loc, std::string detail) {
    out_->push_back(Diagnostic{id, path_,
                               sm_.getSpellingLineNumber(sm_.getExpansionLoc(loc)),
                               std::move(detail)});
  }

  [[nodiscard]] static bool is_machine_body(const LambdaExpr* lam) {
    const CXXMethodDecl* op = lam->getCallOperator();
    if (op == nullptr) return false;
    for (const clang::ParmVarDecl* param : op->parameters()) {
      const QualType t = param->getType();
      if (!t->isLValueReferenceType()) continue;
      const QualType pointee = t->getPointeeType();
      if (pointee.isConstQualified()) continue;
      const CXXRecordDecl* rec = pointee->getAsCXXRecordDecl();
      if (rec == nullptr) continue;
      if (rec->getName() == "MachineContext" || rec->getName() == "StageContext")
        return true;
    }
    return false;
  }

  void check_mutable(const LambdaExpr* lam, bool machine) {
    const CXXMethodDecl* op = lam->getCallOperator();
    if (op == nullptr || op->isConst()) return;  // non-mutable lambdas are const
    if (!in_main_file(lam->getBeginLoc())) return;
    if (machine) {
      diag(DiagId::kConfMutableLambda, lam->getBeginLoc(), "machine body");
    } else if (mutable_scoped_) {
      diag(DiagId::kConfMutableLambda, lam->getBeginLoc(),
           "simulator/driver code");
    }
  }

  void check_machine_captures(const LambdaExpr* lam) {
    if (!in_main_file(lam->getBeginLoc())) return;
    if (lam->getCaptureDefault() == clang::LCD_ByRef) {
      diag(DiagId::kPurityRefCapture, lam->getBeginLoc(), "[&]");
    }
    for (const clang::LambdaCapture& cap : lam->captures()) {
      if (cap.capturesThis()) {
        if (cap.getCaptureKind() == clang::LCK_This) {
          diag(DiagId::kPurityThisCapture, lam->getBeginLoc(), "this");
        }
        continue;
      }
      if (!cap.capturesVariable()) continue;
      const auto* var = llvm::dyn_cast<VarDecl>(cap.getCapturedVar());
      if (var == nullptr) continue;
      QualType t = var->getType();
      if (t->isReferenceType()) t = t->getPointeeType();
      if (cap.getCaptureKind() == clang::LCK_ByRef) {
        // Explicit &name of a non-const entity; implicit ones are already
        // covered by the [&] default diagnostic.
        if (!cap.isImplicit() && !t.isConstQualified()) {
          diag(DiagId::kPurityRefCapture, lam->getBeginLoc(),
               "&" + var->getNameAsString());
        }
      } else if (cap.getCaptureKind() == clang::LCK_ByCopy &&
                 t->isPointerType() && !t->getPointeeType().isConstQualified()) {
        pointer_captures_.insert(var);
      }
    }
  }

  const SourceManager& sm_;
  std::string path_;
  Diagnostics* out_;
  int machine_depth_ = 0;
  bool det_file_ = false;
  bool lint_scoped_ = false;
  bool mutable_scoped_ = false;
  std::set<const clang::Decl*> pointer_captures_;
};

class IncludeCallbacks : public clang::PPCallbacks {
 public:
  IncludeCallbacks(const SourceManager& sm, std::string path, Diagnostics* out)
      : sm_(sm), path_(std::move(path)), out_(out) {}

  void InclusionDirective(SourceLocation hash_loc, const clang::Token&,
                          llvm::StringRef file_name, bool,
                          clang::CharSourceRange,
#if LLVM_VERSION_MAJOR >= 17
                          clang::OptionalFileEntryRef,
#elif LLVM_VERSION_MAJOR >= 16
                          std::optional<clang::FileEntryRef>,
#else
                          llvm::Optional<clang::FileEntryRef>,
#endif
                          llvm::StringRef, llvm::StringRef,
                          const clang::Module*,
                          clang::SrcMgr::CharacteristicKind) override {
    if (!Policy::in_lint_sources(path_) || Policy::allow_intrinsics(path_))
      return;
    if (!sm_.isWrittenInMainFile(sm_.getExpansionLoc(hash_loc))) return;
    static const std::set<std::string> headers = {
        "immintrin.h",     "x86intrin.h",      "emmintrin.h",
        "smmintrin.h",     "avxintrin.h",      "avx2intrin.h",
        "avx512fintrin.h", "avx512bwintrin.h",
    };
    if (headers.count(file_name.str()) > 0) {
      out_->push_back(Diagnostic{
          DiagId::kConfIntrinsics, path_,
          sm_.getSpellingLineNumber(sm_.getExpansionLoc(hash_loc)),
          file_name.str()});
    }
  }

 private:
  const SourceManager& sm_;
  std::string path_;
  Diagnostics* out_;
};

class Consumer : public clang::ASTConsumer {
 public:
  Consumer(std::string path, Diagnostics* out)
      : path_(std::move(path)), out_(out) {}

  void HandleTranslationUnit(ASTContext& ctx) override {
    Visitor visitor(ctx, path_, out_);
    visitor.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  std::string path_;
  Diagnostics* out_;
};

class VerifyAction : public clang::ASTFrontendAction {
 public:
  explicit VerifyAction(Diagnostics* out) : out_(out) {}

  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance& ci, llvm::StringRef file) override {
    const std::string path = normalize_path(file.str());
    ci.getPreprocessor().addPPCallbacks(std::make_unique<IncludeCallbacks>(
        ci.getSourceManager(), path, out_));
    return std::make_unique<Consumer>(path, out_);
  }

 private:
  Diagnostics* out_;
};

class VerifyFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit VerifyFactory(Diagnostics* out) : out_(out) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<VerifyAction>(out_);
  }

 private:
  Diagnostics* out_;
};

void finish(Diagnostics* diags) {
  std::sort(diags->begin(), diags->end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.id, a.detail) <
                     std::tie(b.file, b.line, b.id, b.detail);
            });
  diags->erase(std::unique(diags->begin(), diags->end(),
                           [](const Diagnostic& a, const Diagnostic& b) {
                             return a.id == b.id && a.file == b.file &&
                                    a.line == b.line;
                           }),
               diags->end());
}

}  // namespace

bool ast_engine_available() { return true; }

bool analyze_files_ast(const std::vector<std::string>& files,
                       const std::string& compdb_dir, Diagnostics* out) {
  namespace tooling = clang::tooling;
  std::unique_ptr<tooling::CompilationDatabase> db;
  std::string err;
  if (!compdb_dir.empty()) {
    db = tooling::CompilationDatabase::loadFromDirectory(compdb_dir, err);
    if (db == nullptr) {
      llvm::errs() << "mpcsd_verify: cannot load compilation database: " << err
                   << "\n";
      return false;
    }
  } else {
    db = std::make_unique<tooling::FixedCompilationDatabase>(
        ".", std::vector<std::string>{"-std=c++20", "-xc++", "-Wno-everything"});
  }

  std::vector<std::string> compiled;
  std::vector<std::string> token_fallback;
  for (const std::string& f : files) {
    if (compdb_dir.empty() || !db->getCompileCommands(f).empty()) {
      compiled.push_back(f);
    } else {
      token_fallback.push_back(f);  // typically headers not in the compdb
    }
  }

  if (!compiled.empty()) {
    tooling::ClangTool tool(*db, compiled);
    tool.appendArgumentsAdjuster(
        tooling::getInsertArgumentAdjuster("-Wno-everything"));
    VerifyFactory factory(out);
    if (tool.run(&factory) != 0) return false;
  }
  for (const std::string& f : token_fallback) {
    std::ifstream in(f, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string source = ss.str();
    Diagnostics d = analyze_file_tokens(f, source);
    out->insert(out->end(), d.begin(), d.end());
  }
  finish(out);
  return true;
}

}  // namespace mpcsd_verify
