// mpcsd-verify: the portable token-level engine.
//
// Always built (no dependency beyond the standard library), so the
// conformance gate runs on minimal containers without clang dev libraries.
// It analyzes one file at a time over the lexed token stream with enough
// structure recovered to be AST-grade for this codebase's idioms: lambda
// introducers and capture lists are parsed, machine/stage bodies are
// identified by their context parameter types (`MachineContext&`,
// `StageContext<T>&`), declaration scanning resolves const-ness and
// unordered-container names, and every literal/comment is already out of
// the stream (the lexer dropped them), which is precisely what the grep
// rules could not do.
//
// The clang AST engine (ast_engine.hpp) implements the same catalog with
// real semantic types; the fixture self-test pins both to identical
// verdicts.
#pragma once

#include <string>
#include <string_view>

#include "diagnostics.hpp"

namespace mpcsd_verify {

/// Analyzes one file's contents.  `path` is used for scope policy; it is
/// normalized internally.  Never throws on malformed input.
[[nodiscard]] Diagnostics analyze_file_tokens(std::string_view path,
                                              std::string_view source);

}  // namespace mpcsd_verify
