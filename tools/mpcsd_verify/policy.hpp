// mpcsd-verify: scope and allowlist policy.
//
// Every rule is conditioned on *where* the code lives, mirroring the
// boundaries the repository's correctness argument names: the
// serialization layer may reinterpret_cast, the process backend may fork,
// the router owns its constants.  Paths are matched by suffix/segment so
// the same policy applies to the real tree and to the fixture corpus
// (fixtures mirror repo paths under tools/mpcsd_verify/fixtures/).
#pragma once

#include <string>
#include <string_view>

namespace mpcsd_verify {

/// Normalizes separators to '/' (no filesystem access).
[[nodiscard]] std::string normalize_path(std::string_view path);

/// True if `path` ends with `suffix` at a path-segment boundary
/// (e.g. "a/src/common/bytes.hpp" has suffix "src/common/bytes.hpp").
[[nodiscard]] bool path_ends_with(std::string_view path, std::string_view suffix);

/// True if `path` contains directory run `dir` ("src/mpc/") at segment
/// boundaries anywhere.
[[nodiscard]] bool path_in_dir(std::string_view path, std::string_view dir);

/// Last path segment (file name).
[[nodiscard]] std::string_view base_name(std::string_view path);

struct Policy {
  /// Confinement rules scan the same roots as scripts/lint.sh: library,
  /// fuzz harnesses, examples.  Tests deliberately violate invariants.
  [[nodiscard]] static bool in_lint_sources(std::string_view path);

  /// Files where the determinism rules apply file-wide (drivers and router
  /// decision code); machine bodies are determinism scopes everywhere.
  [[nodiscard]] static bool det_scoped_file(std::string_view path);

  /// Simulator/driver directories where `mutable` lambdas are banned
  /// outright (lint rule 3 scope).
  [[nodiscard]] static bool mutable_scoped(std::string_view path);

  // --- per-rule allowlists -------------------------------------------------
  [[nodiscard]] static bool allow_reinterpret_cast(std::string_view path);
  [[nodiscard]] static bool allow_wall_seconds(std::string_view path);
  [[nodiscard]] static bool allow_intrinsics(std::string_view path);
  [[nodiscard]] static bool allow_process_primitives(std::string_view path);
  [[nodiscard]] static bool allow_socket_primitives(std::string_view path);
  [[nodiscard]] static bool allow_router_constants(std::string_view path);
};

}  // namespace mpcsd_verify
