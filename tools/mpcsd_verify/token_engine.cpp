#include "token_engine.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "lexer.hpp"
#include "policy.hpp"

namespace mpcsd_verify {
namespace {

using Toks = std::vector<Tok>;

[[nodiscard]] bool is(const Tok& t, std::string_view text) {
  return t.text == text;
}
[[nodiscard]] bool is_punct(const Tok& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
[[nodiscard]] bool is_ident(const Tok& t) { return t.kind == TokKind::kIdent; }

/// Type keywords that must never be mistaken for a declared variable name.
[[nodiscard]] bool is_type_keyword(std::string_view s) {
  static const std::unordered_set<std::string_view> kw = {
      "auto",     "bool",    "char",     "char8_t", "char16_t", "char32_t",
      "const",    "double",  "float",    "int",     "long",     "short",
      "signed",   "unsigned", "void",    "wchar_t", "constexpr", "static",
      "inline",   "volatile", "mutable", "typename", "struct",  "class",
      "enum",     "union",   "register", "extern",  "thread_local",
  };
  return kw.count(s) > 0;
}

/// Index after the `>` matching the `<` at `i` (toks[i] must be "<").
/// `>>` closes two levels.  Returns `i` unchanged if this is not a
/// template argument list (hits ; { } or EOF first).
[[nodiscard]] std::size_t skip_angles(const Toks& t, std::size_t i) {
  if (i >= t.size() || !is_punct(t[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const Tok& tk = t[j];
    if (tk.kind != TokKind::kPunct) continue;
    if (tk.text == "<" || tk.text == "<<") depth += tk.text == "<" ? 1 : 2;
    if (tk.text == ">") --depth;
    if (tk.text == ">>") depth -= 2;
    if (tk.text == ";" || tk.text == "{" || tk.text == "}") return i;
    if (depth <= 0) return j + 1;
  }
  return i;
}

/// Index after the closer matching opener toks[i] (one of ( [ {).
[[nodiscard]] std::size_t skip_group(const Toks& t, std::size_t i) {
  if (i >= t.size() || t[i].kind != TokKind::kPunct) return i + 1;
  const std::string_view open = t[i].text;
  std::string_view close;
  if (open == "(") close = ")";
  else if (open == "[") close = "]";
  else if (open == "{") close = "}";
  else return i + 1;
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (is_punct(t[j], open)) ++depth;
    if (is_punct(t[j], close)) {
      if (--depth == 0) return j + 1;
    }
  }
  return t.size();
}

struct Capture {
  enum Kind { kDefaultRef, kDefaultCopy, kThis, kStarThis, kByRef, kByValue };
  Kind kind;
  std::string name;  ///< for kByRef/kByValue
  /// Init-capture rhs when it is a single identifier ("" otherwise / none).
  std::string init_ident;
  bool has_init = false;
};

struct Lambda {
  unsigned intro_line = 0;
  bool machine_body = false;
  bool is_mutable = false;
  std::vector<Capture> captures;
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index one past matching '}'
};

class FileAnalysis {
 public:
  FileAnalysis(std::string path, Toks toks)
      : path_(std::move(path)), t_(std::move(toks)) {}

  Diagnostics run() {
    collect_declarations();
    collect_lambdas();
    apply_purity_rules();
    apply_determinism_rules();
    apply_confinement_rules();
    finish();
    return std::move(out_);
  }

 private:
  void diag(DiagId id, unsigned line, std::string detail) {
    out_.push_back(Diagnostic{id, path_, line, std::move(detail)});
  }

  // --- declaration scanning ------------------------------------------------

  /// Records the declared name after a type at `i` (first token of the
  /// declarator tail): skips & * and returns the identifier if it is a
  /// plausible variable name.
  void record_declared_name(std::size_t i, std::unordered_set<std::string>* into) {
    while (i < t_.size() && (is_punct(t_[i], "&") || is_punct(t_[i], "*") ||
                             is_punct(t_[i], "&&"))) {
      ++i;
    }
    if (i >= t_.size() || !is_ident(t_[i]) || is_type_keyword(t_[i].text)) return;
    if (i + 1 < t_.size() && (is_punct(t_[i + 1], "::") || is_punct(t_[i + 1], "<")))
      return;  // qualifier or template name, not a declarator
    into->insert(t_[i].text);
  }

  void collect_declarations() {
    for (std::size_t i = 0; i < t_.size(); ++i) {
      const Tok& tk = t_[i];
      if (!is_ident(tk)) continue;

      // const-declared names: `const <type...> name` with the declarator
      // terminated by = ; , ) : { or (.  Structured bindings enumerate
      // every bound name.
      if (tk.text == "const") {
        scan_const_declaration(i + 1);
        continue;
      }

      // unordered container declarations and aliases.
      if (tk.text == "unordered_map" || tk.text == "unordered_set" ||
          tk.text == "unordered_multimap" || tk.text == "unordered_multiset") {
        if (i + 1 < t_.size() && is_punct(t_[i + 1], "<")) {
          const std::size_t after = skip_angles(t_, i + 1);
          if (after != i + 1) {
            check_pointer_key(i + 2, after - 1, tk.line);
            if (after < t_.size() && !is_punct(t_[after], "::")) {
              record_declared_name(after, &unordered_names_);
            }
          }
        }
        continue;
      }

      // `using Alias = ... unordered_map<...> ...;` makes Alias unordered.
      if (tk.text == "using" && i + 2 < t_.size() && is_ident(t_[i + 1]) &&
          is_punct(t_[i + 2], "=")) {
        for (std::size_t j = i + 3; j < t_.size() && !is_punct(t_[j], ";"); ++j) {
          if (is_ident(t_[j]) && (t_[j].text == "unordered_map" ||
                                  t_[j].text == "unordered_set")) {
            unordered_aliases_.insert(t_[i + 1].text);
            break;
          }
          if (j > i + 40) break;
        }
        continue;
      }

      // Declarations through an unordered alias: `Alias name`.
      if (unordered_aliases_.count(tk.text) > 0 && i + 1 < t_.size() &&
          !is_punct(t_[i + 1], "=")) {
        record_declared_name(i + 1, &unordered_names_);
        continue;
      }

      // std::map/std::set with pointer keys, std::hash over a pointer.
      if ((tk.text == "map" || tk.text == "set" || tk.text == "multimap" ||
           tk.text == "multiset" || tk.text == "hash") &&
          i >= 2 && is_punct(t_[i - 1], "::") && is(t_[i - 2], "std") &&
          i + 1 < t_.size() && is_punct(t_[i + 1], "<")) {
        const std::size_t after = skip_angles(t_, i + 1);
        if (after != i + 1) check_pointer_key(i + 2, after - 1, tk.line);
      }
    }
  }

  void scan_const_declaration(std::size_t i) {
    std::string last_ident;
    for (std::size_t j = i; j < t_.size() && j < i + 48; ++j) {
      const Tok& tk = t_[j];
      if (is_ident(tk)) {
        if (!is_type_keyword(tk.text)) last_ident = tk.text;
        continue;
      }
      if (tk.kind != TokKind::kPunct) return;
      if (tk.text == "<") {
        const std::size_t after = skip_angles(t_, j);
        if (after == j) return;
        j = after - 1;
        continue;
      }
      if (tk.text == "::" || tk.text == "&" || tk.text == "*" || tk.text == "&&")
        continue;
      if (tk.text == "[") {
        // structured binding: const auto& [a, b] = ...
        for (std::size_t k = j + 1; k < t_.size() && !is_punct(t_[k], "]"); ++k) {
          if (is_ident(t_[k])) const_names_.insert(t_[k].text);
        }
        return;
      }
      if (tk.text == "=" || tk.text == ";" || tk.text == "," ||
          tk.text == ")" || tk.text == ":" || tk.text == "{" ||
          tk.text == "(") {
        if (!last_ident.empty()) const_names_.insert(last_ident);
        return;
      }
      return;  // anything else: not a simple declaration
    }
  }

  /// Records a pointer-keyed verdict if the first top-level template
  /// argument in [begin, end) contains a `*`.
  void check_pointer_key(std::size_t begin, std::size_t end, unsigned line) {
    int depth = 0;
    for (std::size_t j = begin; j < end && j < t_.size(); ++j) {
      const Tok& tk = t_[j];
      if (tk.kind != TokKind::kPunct) continue;
      if (tk.text == "<" || tk.text == "(") ++depth;
      if (tk.text == ">" || tk.text == ")") --depth;
      if (depth == 0 && tk.text == ",") return;  // key type ended, no '*'
      if (depth == 0 && tk.text == "*") {
        pointer_key_decls_.push_back({line, j});
        return;
      }
    }
  }

  // --- lambda scanning -----------------------------------------------------

  [[nodiscard]] bool lambda_intro_position(std::size_t i) const {
    if (i == 0) return true;
    const Tok& p = t_[i - 1];
    if (p.kind == TokKind::kIdent)
      return p.text == "return" || p.text == "co_return" || p.text == "case";
    if (p.kind == TokKind::kDirective) return true;
    if (p.kind != TokKind::kPunct) return false;
    return p.text != ")" && p.text != "]" && p.text != "}";
  }

  void collect_lambdas() {
    for (std::size_t i = 0; i < t_.size(); ++i) {
      if (!is_punct(t_[i], "[")) continue;
      if (i + 1 < t_.size() && is_punct(t_[i + 1], "[")) continue;  // [[attr]]
      if (!lambda_intro_position(i)) continue;
      parse_lambda(i);
    }
  }

  void parse_lambda(std::size_t intro) {
    const std::size_t intro_end = skip_group(t_, intro);  // one past ']'
    if (intro_end <= intro || intro_end > t_.size()) return;

    Lambda lam;
    lam.intro_line = t_[intro].line;
    if (!parse_captures(intro + 1, intro_end - 1, &lam.captures)) return;

    std::size_t i = intro_end;
    if (i < t_.size() && is_punct(t_[i], "<")) {  // C++20 template lambda
      const std::size_t after = skip_angles(t_, i);
      if (after == i) return;
      i = after;
    }
    if (i >= t_.size() || !is_punct(t_[i], "(")) return;  // no param list
    const std::size_t params_begin = i + 1;
    const std::size_t params_end_excl = skip_group(t_, i);  // one past ')'
    if (params_end_excl > t_.size()) return;
    lam.machine_body = params_are_machine_context(params_begin, params_end_excl - 1);

    // Specifier region up to the body brace.
    i = params_end_excl;
    for (std::size_t guard = 0; i < t_.size() && guard < 64; ++guard) {
      const Tok& tk = t_[i];
      if (is_punct(tk, "{")) break;
      if (is_punct(tk, ";") || is_punct(tk, ")") || is_punct(tk, ",")) return;
      if (is_ident(tk) && tk.text == "mutable") {
        lam.is_mutable = true;
        ++i;
        continue;
      }
      if (is_punct(tk, "(")) {  // noexcept(...)
        i = skip_group(t_, i);
        continue;
      }
      if (is_punct(tk, "<")) {
        const std::size_t after = skip_angles(t_, i);
        i = after == i ? i + 1 : after;
        continue;
      }
      ++i;  // noexcept, ->, type tokens
    }
    if (i >= t_.size() || !is_punct(t_[i], "{")) return;
    lam.body_begin = i;
    lam.body_end = skip_group(t_, i);
    lambdas_.push_back(std::move(lam));
  }

  [[nodiscard]] bool parse_captures(std::size_t begin, std::size_t end,
                                    std::vector<Capture>* out) const {
    std::size_t i = begin;
    while (i < end) {
      Capture cap{};
      if (is_punct(t_[i], "&") &&
          (i + 1 >= end || is_punct(t_[i + 1], ","))) {
        cap.kind = Capture::kDefaultRef;
        i += 1;
      } else if (is_punct(t_[i], "=") &&
                 (i + 1 >= end || is_punct(t_[i + 1], ","))) {
        cap.kind = Capture::kDefaultCopy;
        i += 1;
      } else if (is_ident(t_[i]) && t_[i].text == "this") {
        cap.kind = Capture::kThis;
        i += 1;
      } else if (is_punct(t_[i], "*") && i + 1 < end && is(t_[i + 1], "this")) {
        cap.kind = Capture::kStarThis;
        i += 2;
      } else if (is_punct(t_[i], "&") && i + 1 < end && is_ident(t_[i + 1])) {
        cap.kind = Capture::kByRef;
        cap.name = t_[i + 1].text;
        i += 2;
      } else if (is_ident(t_[i])) {
        cap.kind = Capture::kByValue;
        cap.name = t_[i].text;
        i += 1;
      } else {
        return false;  // not a capture list (e.g. subscript misdetected)
      }
      if (i < end && is_punct(t_[i], "...")) ++i;  // pack expansion
      if (i < end && is_punct(t_[i], "=")) {       // init-capture
        cap.has_init = true;
        std::size_t j = i + 1;
        if (j < end && is_ident(t_[j]) &&
            (j + 1 >= end || is_punct(t_[j + 1], ","))) {
          cap.init_ident = t_[j].text;
        }
        int depth = 0;  // skip initializer up to top-level comma
        while (i < end) {
          const Tok& tk = t_[i];
          if (tk.kind == TokKind::kPunct) {
            if (tk.text == "(" || tk.text == "[" || tk.text == "{") ++depth;
            if (tk.text == ")" || tk.text == "]" || tk.text == "}") --depth;
            if (tk.text == "," && depth == 0) break;
          }
          ++i;
        }
      }
      out->push_back(std::move(cap));
      if (i < end) {
        if (!is_punct(t_[i], ",")) return false;
        ++i;
      }
    }
    return true;
  }

  [[nodiscard]] bool params_are_machine_context(std::size_t begin,
                                                std::size_t end) const {
    for (std::size_t i = begin; i < end && i < t_.size(); ++i) {
      if (!is_ident(t_[i])) continue;
      if (t_[i].text == "MachineContext") {
        if (i + 1 < end && is_punct(t_[i + 1], "&")) return true;
      }
      if (t_[i].text == "StageContext" && i + 1 < end &&
          is_punct(t_[i + 1], "<")) {
        const std::size_t after = skip_angles(t_, i + 1);
        if (after != i + 1 && after < t_.size() && is_punct(t_[after], "&"))
          return true;
      }
    }
    return false;
  }

  // --- rule passes ---------------------------------------------------------

  void apply_purity_rules() {
    for (const Lambda& lam : lambdas_) {
      if (lam.machine_body && lam.is_mutable) {
        diag(DiagId::kConfMutableLambda, lam.intro_line, "machine body");
      } else if (lam.is_mutable && Policy::mutable_scoped(path_)) {
        diag(DiagId::kConfMutableLambda, lam.intro_line, "simulator/driver code");
      }
      if (!lam.machine_body) continue;
      for (const Capture& cap : lam.captures) {
        switch (cap.kind) {
          case Capture::kDefaultRef:
            diag(DiagId::kPurityRefCapture, lam.intro_line, "[&]");
            break;
          case Capture::kThis:
            diag(DiagId::kPurityThisCapture, lam.intro_line, "this");
            break;
          case Capture::kByRef: {
            const std::string& referent =
                cap.has_init ? cap.init_ident : cap.name;
            if (referent.empty() || const_names_.count(referent) == 0) {
              diag(DiagId::kPurityRefCapture, lam.intro_line, "&" + cap.name);
            }
            break;
          }
          case Capture::kByValue:
            if (!cap.has_init || !cap.init_ident.empty()) {
              check_pointer_writes(lam, cap.has_init ? cap.name : cap.name);
            }
            break;
          case Capture::kDefaultCopy:
          case Capture::kStarThis:
            break;  // copies; writes stay machine-local
        }
      }
    }
  }

  /// Flags writes through a by-value captured pointer inside the body:
  /// `p->x = v`, `*p = v`, `p->mutator(...)`.
  void check_pointer_writes(const Lambda& lam, const std::string& name) {
    static const std::unordered_set<std::string_view> mutators = {
        "push_back", "emplace_back", "insert", "emplace", "clear",
        "erase",     "resize",       "assign", "pop_back", "reserve",
    };
    for (std::size_t i = lam.body_begin; i + 2 < lam.body_end && i < t_.size();
         ++i) {
      // *name = ...
      if (is_punct(t_[i], "*") && is(t_[i + 1], name) &&
          is_punct(t_[i + 2], "=")) {
        const bool deref = i == 0 || t_[i - 1].kind == TokKind::kPunct ||
                           (is_ident(t_[i - 1]) && t_[i - 1].text == "return");
        if (deref) {
          diag(DiagId::kPurityPointerWrite, t_[i].line, "*" + name);
          return;
        }
      }
      if (!is(t_[i], name) || !is_punct(t_[i + 1], "->")) continue;
      // Walk the member chain after `name->`.
      std::size_t j = i + 2;
      while (j < lam.body_end && j < t_.size()) {
        if (is_ident(t_[j])) {
          if (mutators.count(t_[j].text) > 0 && j + 1 < t_.size() &&
              is_punct(t_[j + 1], "(")) {
            diag(DiagId::kPurityPointerWrite, t_[i].line, name + "->" + t_[j].text);
            return;
          }
          ++j;
          continue;
        }
        if (is_punct(t_[j], ".") || is_punct(t_[j], "->")) {
          ++j;
          continue;
        }
        if (is_punct(t_[j], "[")) {
          j = skip_group(t_, j);
          continue;
        }
        break;
      }
      if (j < t_.size() && t_[j].kind == TokKind::kPunct &&
          (t_[j].text == "=" || t_[j].text == "+=" || t_[j].text == "-=" ||
           t_[j].text == "*=" || t_[j].text == "/=" || t_[j].text == "|=" ||
           t_[j].text == "&=" || t_[j].text == "^=" || t_[j].text == "++" ||
           t_[j].text == "--")) {
        diag(DiagId::kPurityPointerWrite, t_[i].line, name + "->...");
        return;
      }
    }
  }

  [[nodiscard]] bool in_machine_body(std::size_t idx) const {
    for (const Lambda& lam : lambdas_) {
      if (lam.machine_body && idx > lam.body_begin && idx < lam.body_end)
        return true;
    }
    return false;
  }

  [[nodiscard]] bool det_scope(std::size_t idx) const {
    return det_file_ || in_machine_body(idx);
  }

  void apply_determinism_rules() {
    det_file_ = Policy::det_scoped_file(path_);

    for (const auto& [line, idx] : pointer_key_decls_) {
      if (det_scope(idx)) diag(DiagId::kDetPointerKeyed, line, "pointer key");
    }

    for (std::size_t i = 0; i < t_.size(); ++i) {
      // Range-for over an unordered container: for (... : name)
      if (is_ident(t_[i]) && t_[i].text == "for" && i + 1 < t_.size() &&
          is_punct(t_[i + 1], "(")) {
        const std::size_t close = skip_group(t_, i + 1);
        int depth = 0;
        for (std::size_t j = i + 1; j + 1 < close && j < t_.size(); ++j) {
          if (is_punct(t_[j], "(")) ++depth;
          if (is_punct(t_[j], ")")) --depth;
          if (depth == 1 && is_punct(t_[j], ":") && j + 3 == close &&
              is_ident(t_[j + 1]) &&
              unordered_names_.count(t_[j + 1].text) > 0 && det_scope(j + 1)) {
            diag(DiagId::kDetUnorderedIter, t_[j + 1].line, t_[j + 1].text);
          }
        }
      }
      // Iterator-driven iteration: name.begin() / name.cbegin()
      if (is_ident(t_[i]) && unordered_names_.count(t_[i].text) > 0 &&
          i + 3 < t_.size() && is_punct(t_[i + 1], ".") && is_ident(t_[i + 2]) &&
          (t_[i + 2].text == "begin" || t_[i + 2].text == "cbegin") &&
          is_punct(t_[i + 3], "(") && det_scope(i)) {
        diag(DiagId::kDetUnorderedIter, t_[i].line, t_[i].text + ".begin()");
      }
      // Direct clock reads: <clock>::now(
      if (is_ident(t_[i]) &&
          (t_[i].text == "steady_clock" || t_[i].text == "system_clock" ||
           t_[i].text == "high_resolution_clock") &&
          i + 3 < t_.size() && is_punct(t_[i + 1], "::") &&
          is(t_[i + 2], "now") && is_punct(t_[i + 3], "(") && det_scope(i)) {
        diag(DiagId::kDetWallClock, t_[i].line, t_[i].text + "::now()");
      }
    }
  }

  void apply_confinement_rules() {
    if (!Policy::in_lint_sources(path_)) return;
    const bool allow_reinterpret = Policy::allow_reinterpret_cast(path_);
    const bool allow_wall = Policy::allow_wall_seconds(path_);
    const bool allow_intrin = Policy::allow_intrinsics(path_);
    const bool allow_proc = Policy::allow_process_primitives(path_);
    const bool allow_sock = Policy::allow_socket_primitives(path_);
    const bool allow_router = Policy::allow_router_constants(path_);

    static const std::unordered_set<std::string_view> process_prims = {
        "fork",         "vfork",    "mmap",       "munmap",
        "memfd_create", "shm_open", "shm_unlink",
    };
    // `bind` and `connect` have namespaced homonyms (std::bind, signal/slot
    // connect members); only the unqualified free-function spelling is the
    // syscall, so a preceding `::`, `.` or `->` disqualifies a match.
    static const std::unordered_set<std::string_view> socket_prims = {
        "socket", "bind", "listen", "accept", "accept4", "connect",
    };
    static constexpr std::string_view intrin_headers[] = {
        "immintrin.h", "x86intrin.h",  "emmintrin.h",
        "smmintrin.h", "avxintrin.h",  "avx2intrin.h",
        "avx512fintrin.h", "avx512bwintrin.h",
    };

    for (std::size_t i = 0; i < t_.size(); ++i) {
      const Tok& tk = t_[i];
      if (tk.kind == TokKind::kDirective) {
        if (!allow_intrin && tk.text.find("include") != std::string::npos) {
          for (const auto h : intrin_headers) {
            if (tk.text.find(h) != std::string::npos) {
              diag(DiagId::kConfIntrinsics, tk.line, std::string(h));
              break;
            }
          }
        }
        continue;
      }
      if (!is_ident(tk)) continue;
      if (!allow_reinterpret && tk.text == "reinterpret_cast") {
        diag(DiagId::kConfReinterpretCast, tk.line, "");
      }
      if (!allow_wall && tk.text == "wall_seconds" && i >= 1 &&
          (is_punct(t_[i - 1], ".") || is_punct(t_[i - 1], "->")) &&
          i + 1 < t_.size() && t_[i + 1].kind == TokKind::kPunct &&
          (t_[i + 1].text == "=" || t_[i + 1].text == "+=" ||
           t_[i + 1].text == "-=" || t_[i + 1].text == "*=" ||
           t_[i + 1].text == "/=")) {
        diag(DiagId::kConfWallSeconds, tk.line, "wall_seconds write");
      }
      if (!allow_proc && process_prims.count(tk.text) > 0 &&
          i + 1 < t_.size() && is_punct(t_[i + 1], "(") &&
          (i == 0 ||
           (!is_punct(t_[i - 1], ".") && !is_punct(t_[i - 1], "->")))) {
        diag(DiagId::kConfProcessPrimitive, tk.line, tk.text + "()");
      }
      if (!allow_sock && socket_prims.count(tk.text) > 0 &&
          i + 1 < t_.size() && is_punct(t_[i + 1], "(") &&
          (i == 0 ||
           (!is_punct(t_[i - 1], ".") && !is_punct(t_[i - 1], "->") &&
            !is_punct(t_[i - 1], "::")))) {
        diag(DiagId::kConfSocketPrimitive, tk.line, tk.text + "()");
      }
      if (!allow_router && tk.text.rfind("kRouter", 0) == 0) {
        diag(DiagId::kConfRouterConstant, tk.line, tk.text);
      }
    }
  }

  void finish() {
    std::sort(out_.begin(), out_.end(), [](const Diagnostic& a, const Diagnostic& b) {
      if (a.line != b.line) return a.line < b.line;
      if (a.id != b.id) return a.id < b.id;
      return a.detail < b.detail;
    });
    out_.erase(std::unique(out_.begin(), out_.end(),
                           [](const Diagnostic& a, const Diagnostic& b) {
                             return a.id == b.id && a.line == b.line &&
                                    a.detail == b.detail;
                           }),
               out_.end());
  }

  std::string path_;
  Toks t_;
  Diagnostics out_;
  std::vector<Lambda> lambdas_;
  std::unordered_set<std::string> const_names_;
  std::unordered_set<std::string> unordered_names_;
  std::unordered_set<std::string> unordered_aliases_;
  std::vector<std::pair<unsigned, std::size_t>> pointer_key_decls_;
  bool det_file_ = false;
};

}  // namespace

Diagnostics analyze_file_tokens(std::string_view path, std::string_view source) {
  return FileAnalysis(normalize_path(path), lex(source)).run();
}

}  // namespace mpcsd_verify
