#include "policy.hpp"

namespace mpcsd_verify {

std::string normalize_path(std::string_view path) {
  std::string out(path);
  for (char& c : out) {
    if (c == '\\') c = '/';
  }
  return out;
}

bool path_ends_with(std::string_view path, std::string_view suffix) {
  if (suffix.size() > path.size()) return false;
  if (path.substr(path.size() - suffix.size()) != suffix) return false;
  if (suffix.size() == path.size()) return true;
  return path[path.size() - suffix.size() - 1] == '/';
}

bool path_in_dir(std::string_view path, std::string_view dir) {
  // `dir` ends with '/'; match "<...>/dir<...>" or "dir<...>".
  if (path.substr(0, dir.size()) == dir) return true;
  std::string needle("/");
  needle += dir;
  return path.find(needle) != std::string_view::npos;
}

std::string_view base_name(std::string_view path) {
  const auto pos = path.rfind('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

bool Policy::in_lint_sources(std::string_view path) {
  return path_in_dir(path, "src/") || path_in_dir(path, "fuzz/") ||
         path_in_dir(path, "examples/");
}

bool Policy::det_scoped_file(std::string_view path) {
  // Drivers: the plan driver, the MPC primitives, the batch driver and the
  // solver pipelines; router decision code.  The cluster itself is covered
  // by its machine bodies (it runs, it does not decide).
  if (path_in_dir(path, "src/ulam_mpc/") || path_in_dir(path, "src/edit_mpc/"))
    return true;
  const std::string_view stems[] = {
      "src/mpc/plan.hpp",  "src/mpc/plan.cpp",  "src/mpc/primitives.hpp",
      "src/mpc/primitives.cpp", "src/core/batch.hpp", "src/core/batch.cpp",
      "src/core/router.hpp", "src/core/router.cpp",
  };
  for (const auto s : stems) {
    if (path_ends_with(path, s)) return true;
  }
  return false;
}

bool Policy::mutable_scoped(std::string_view path) {
  return path_in_dir(path, "src/mpc/") || path_in_dir(path, "src/ulam_mpc/") ||
         path_in_dir(path, "src/edit_mpc/") || path_in_dir(path, "src/core/");
}

bool Policy::allow_reinterpret_cast(std::string_view path) {
  if (path_ends_with(path, "src/common/bytes.hpp")) return true;
  if (path_in_dir(path, "fuzz/")) return true;
  // SIMD kernel TUs: vector load/store intrinsics over TU-owned buffers.
  const std::string_view base = base_name(path);
  return path_in_dir(path, "src/seq/") &&
         base.find("_simd") != std::string_view::npos;
}

bool Policy::allow_wall_seconds(std::string_view path) {
  return path_in_dir(path, "src/obs/") ||
         path_ends_with(path, "src/mpc/cluster.cpp") ||
         path_ends_with(path, "src/mpc/stats.cpp");
}

bool Policy::allow_intrinsics(std::string_view path) {
  const std::string_view base = base_name(path);
  if (path_in_dir(path, "src/seq/") &&
      base.find("_simd") != std::string_view::npos && path_ends_with(path, base) &&
      base.size() > 4 && base.substr(base.size() - 4) == ".cpp")
    return true;
  return path_ends_with(path, "src/common/cpu.hpp") ||
         path_ends_with(path, "src/common/cpu.cpp");
}

bool Policy::allow_process_primitives(std::string_view path) {
  // The socket transport forks its connect-back workers, so it shares the
  // process-primitive allowance with the process backend.
  return path_ends_with(path, "src/mpc/backend_process.cpp") ||
         path_ends_with(path, "src/mpc/transport_socket.cpp");
}

bool Policy::allow_socket_primitives(std::string_view path) {
  return path_ends_with(path, "src/mpc/transport_socket.cpp");
}

bool Policy::allow_router_constants(std::string_view path) {
  return path_ends_with(path, "src/core/router.hpp") ||
         path_ends_with(path, "src/core/router.cpp");
}

}  // namespace mpcsd_verify
