// Stub AST engine for containers without clang development libraries.
#include "ast_engine.hpp"

namespace mpcsd_verify {

bool ast_engine_available() { return false; }

bool analyze_files_ast(const std::vector<std::string>&, const std::string&,
                       Diagnostics*) {
  return false;
}

}  // namespace mpcsd_verify
