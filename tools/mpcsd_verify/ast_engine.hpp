// mpcsd-verify: the clang LibTooling engine (optional).
//
// Compiled only when the container has clang development libraries
// (MPCSD_HAVE_CLANG_TOOLING); otherwise a stub TU reports the engine as
// unavailable and the CLI falls back to the token engine.  Both engines
// emit the same diagnostic catalog and are pinned to identical verdicts on
// the fixture corpus by --self-test.
#pragma once

#include <string>
#include <vector>

#include "diagnostics.hpp"

namespace mpcsd_verify {

/// True when this binary was built against clang LibTooling.
[[nodiscard]] bool ast_engine_available();

/// Analyzes `files` with the AST engine.  `compdb_dir` points at the
/// directory holding compile_commands.json; when empty, a fixed C++20
/// command line is used (fixture mode).  Appends findings to `out`.
/// Returns false on a hard failure (engine unavailable, no parsable TU).
[[nodiscard]] bool analyze_files_ast(const std::vector<std::string>& files,
                                     const std::string& compdb_dir,
                                     Diagnostics* out);

}  // namespace mpcsd_verify
