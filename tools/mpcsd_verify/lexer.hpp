// mpcsd-verify: a small C++ lexer.
//
// Produces the token stream the portable engine analyzes: comments are
// dropped (so prose cannot trip keyword rules the way it can trip grep),
// string/char literals are single tokens (so "fork(" in a log message is
// not a call), raw strings and line continuations are handled, and each
// preprocessor directive is one token carrying its full (continued) text
// (so `#include <immintrin.h>` is matchable as a unit).
//
// This is not a preprocessor: macros are not expanded and headers are not
// included.  The analysis is per translation-unit *file*, which is exactly
// the granularity the confinement rules are stated at.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mpcsd_verify {

enum class TokKind {
  kIdent,     ///< identifiers and keywords
  kNumber,    ///< numeric literal (pp-number)
  kString,    ///< string literal, including raw strings and prefixes
  kChar,      ///< character literal
  kPunct,     ///< operator/punctuator, maximal munch
  kDirective, ///< whole preprocessor directive, continuations folded
};

struct Tok {
  TokKind kind;
  std::string text;
  unsigned line = 0;  ///< 1-based line of the token's first character
};

/// Tokenizes `source`.  Never throws on malformed input: unterminated
/// literals/comments simply end at EOF (the engine analyzes what it saw).
[[nodiscard]] std::vector<Tok> lex(std::string_view source);

}  // namespace mpcsd_verify
