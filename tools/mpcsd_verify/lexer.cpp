#include "lexer.hpp"

#include <cctype>

namespace mpcsd_verify {
namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators, longest first within each head character.
/// (Only the ones that matter for maximal munch correctness; anything else
/// falls back to a single character.)
[[nodiscard]] std::size_t punct_len(std::string_view s) {
  static constexpr std::string_view kThree[] = {"<<=", ">>=", "...", "->*"};
  static constexpr std::string_view kTwo[] = {
      "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
      "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##", "<=>",
  };
  for (const auto p : kThree) {
    if (s.substr(0, 3) == p) return 3;
  }
  if (s.substr(0, 3) == "<=>") return 3;
  for (const auto p : kTwo) {
    if (s.substr(0, 2) == p) return 2;
  }
  return 1;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Tok> run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && is_newline_at(pos_ + 1)) {
        skip_continuation();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_directive();
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        lex_ident_or_prefixed_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
        lex_number();
        continue;
      }
      if (c == '"') {
        lex_string(pos_);
        continue;
      }
      if (c == '\'') {
        lex_char(pos_);
        continue;
      }
      const std::size_t len = punct_len(src_.substr(pos_));
      push(TokKind::kPunct, pos_, pos_ + len);
      pos_ += len;
    }
    return std::move(toks_);
  }

 private:
  [[nodiscard]] char peek(std::size_t off) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  [[nodiscard]] bool is_newline_at(std::size_t p) const {
    if (p >= src_.size()) return false;
    if (src_[p] == '\n') return true;
    return src_[p] == '\r' && p + 1 < src_.size() && src_[p + 1] == '\n';
  }
  void skip_continuation() {
    ++pos_;  // backslash
    if (pos_ < src_.size() && src_[pos_] == '\r') ++pos_;
    if (pos_ < src_.size() && src_[pos_] == '\n') {
      ++pos_;
      ++line_;
    }
  }

  void push(TokKind kind, std::size_t begin, std::size_t end, unsigned line = 0) {
    toks_.push_back(
        Tok{kind, std::string(src_.substr(begin, end - begin)), line ? line : line_});
  }

  void skip_line_comment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && is_newline_at(pos_ + 1)) {
        skip_continuation();
        continue;
      }
      ++pos_;
    }
  }

  void skip_block_comment() {
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  void lex_directive() {
    const std::size_t begin = pos_;
    const unsigned line = line_;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && is_newline_at(pos_ + 1)) {
        skip_continuation();
        text += ' ';
        continue;
      }
      if (src_[pos_] == '/' && peek(1) == '/') {
        skip_line_comment();
        break;
      }
      if (src_[pos_] == '/' && peek(1) == '*') {
        skip_block_comment();
        text += ' ';
        continue;
      }
      text += src_[pos_++];
    }
    (void)begin;
    toks_.push_back(Tok{TokKind::kDirective, std::move(text), line});
    at_line_start_ = true;  // the trailing '\n' is consumed by the main loop
  }

  void lex_ident_or_prefixed_literal() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_cont(src_[pos_])) ++pos_;
    const std::string_view id = src_.substr(begin, pos_ - begin);
    // String/char prefixes: u8R"(..)", LR"(..)", u"..", L'c' ...
    if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'')) {
      const bool raw = !id.empty() && id.back() == 'R';
      const bool prefix =
          id == "R" || id == "L" || id == "u" || id == "U" || id == "u8" ||
          id == "LR" || id == "uR" || id == "UR" || id == "u8R";
      if (prefix) {
        if (src_[pos_] == '"') {
          if (raw) {
            lex_raw_string(begin);
          } else {
            lex_string(begin);
          }
        } else {
          lex_char(begin);
        }
        return;
      }
    }
    push(TokKind::kIdent, begin, pos_);
  }

  void lex_number() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_cont(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    push(TokKind::kNumber, begin, pos_);
  }

  void lex_string(std::size_t begin) {
    const unsigned line = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') {  // unterminated; stop at line end
        break;
      }
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    push(TokKind::kString, begin, pos_, line);
  }

  void lex_raw_string(std::size_t begin) {
    const unsigned line = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    const std::string close = ")" + delim + "\"";
    const std::size_t found = src_.find(close, pos_);
    const std::size_t end =
        found == std::string_view::npos ? src_.size() : found + close.size();
    for (std::size_t i = pos_; i < end && i < src_.size(); ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end;
    push(TokKind::kString, begin, pos_, line);
  }

  void lex_char(std::size_t begin) {
    const unsigned line = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    push(TokKind::kChar, begin, pos_, line);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  unsigned line_ = 1;
  bool at_line_start_ = true;
  std::vector<Tok> toks_;
};

}  // namespace

std::vector<Tok> lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace mpcsd_verify
