// Fuzz harness for the CLI batch input surface: `core::parse_batch_tsv`
// and the `core::parse_symbols` token rule (core/tsv.*).  These functions
// consume operator-supplied files byte-for-byte, so they must never crash,
// throw, or report nonsense positions on arbitrary input.
//
// Invariants:
//   * no exception escapes for any input, under either algorithm;
//   * success yields at least one query, and for kUlam every side is
//     repeat-free (the parser owns that validation rule);
//   * failure reports a line number no greater than the number of input
//     lines (0 is the whole-input sentinel).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "core/tsv.hpp"
#include "seq/lis.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  std::size_t lines = 1;
  for (const char c : text) lines += c == '\n' ? 1 : 0;

  for (const auto algorithm : {mpcsd::core::BatchAlgorithm::kEdit,
                               mpcsd::core::BatchAlgorithm::kUlam}) {
    mpcsd::core::TsvError error;
    const auto queries = mpcsd::core::parse_batch_tsv(text, algorithm, &error);
    if (queries.has_value()) {
      if (queries->empty()) std::abort();
      if (algorithm == mpcsd::core::BatchAlgorithm::kUlam) {
        for (const auto& q : *queries) {
          if (!mpcsd::seq::is_repeat_free(q.s) ||
              !mpcsd::seq::is_repeat_free(q.t)) {
            std::abort();
          }
        }
      }
    } else if (error.line > lines) {
      std::abort();
    }
  }

  (void)mpcsd::core::parse_symbols(text);
  return 0;
}
