// Fuzz harness for the wire layer every cross-machine byte travels through:
// `ByteReader` / `ChainReader` primitives and the `Codec<T>` shapes of the
// plan layer (PODs, length-prefixed vectors, strings, field-tuple structs,
// tagged variants, inbox streams).
//
// Invariants under arbitrary input bytes:
//   * decode never crashes, never reads out of bounds, never allocates
//     unboundedly — malformed input is rejected with `ContractViolation`;
//   * whatever DOES decode round-trips: re-encoding the value and decoding
//     it again yields an equal value consuming the whole re-encoding.
//
// The same bytes are decoded twice — contiguously through `ByteReader` and
// through a `ChainReader` over input-derived fragment splits — so values
// straddling fragment boundaries are exercised on every input.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "mpc/plan.hpp"

namespace {

using namespace mpcsd;
using mpc::Codec;
using mpc::Inbox;

/// A composite message exercising the field-tuple codec with nested
/// vector/string members (the shape of real driver messages).
struct Probe {
  std::uint32_t id = 0;
  std::vector<std::int64_t> values;
  std::string tag;

  static constexpr auto fields() {
    return std::make_tuple(&Probe::id, &Probe::values, &Probe::tag);
  }
  bool operator==(const Probe&) const = default;
};

using Poly = std::variant<std::uint32_t, std::vector<std::uint16_t>, Probe>;

/// Decodes a `T`, and if that succeeds, demands an exact value round-trip.
template <typename T, typename Reader>
void decode_and_roundtrip(Reader& r) {
  try {
    const T value = Codec<T>::decode(r);
    ByteWriter w;
    Codec<T>::encode(w, value);
    const Bytes again = std::move(w).take();
    ByteReader rr(again);
    const T twice = Codec<T>::decode(rr);
    if (!(twice == value) || !rr.exhausted()) std::abort();
  } catch (const ContractViolation&) {
    // Malformed input rejected — exactly the contract under test.
  }
}

template <typename Reader>
void decode_all_shapes(Reader& r) {
  decode_and_roundtrip<std::uint32_t>(r);
  decode_and_roundtrip<std::vector<std::uint32_t>>(r);
  decode_and_roundtrip<std::string>(r);
  decode_and_roundtrip<Probe>(r);
  decode_and_roundtrip<Poly>(r);
  decode_and_roundtrip<std::vector<Probe>>(r);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto* bytes = reinterpret_cast<const std::byte*>(data);

  // Pass 1: one contiguous buffer.
  {
    ByteReader r(bytes, size);
    decode_all_shapes(r);
  }

  // Pass 2: the same bytes as a fragmented inbox chain.  Split points come
  // from the input itself so the fuzzer can steer values onto boundaries.
  {
    ByteChain chain;
    std::size_t pos = 0;
    std::size_t salt = 0;
    while (pos < size) {
      salt = salt * 131 + static_cast<std::size_t>(data[pos]);
      const std::size_t piece = 1 + salt % 23;
      const std::size_t take = piece < size - pos ? piece : size - pos;
      chain.add(ByteSpan(bytes + pos, take));
      pos += take;
    }
    ChainReader r(chain);
    decode_all_shapes(r);

    // An inbox stream over the fragments: decode messages until the chain
    // is exhausted or a malformed tail is rejected.
    ChainReader inbox_r(chain);
    try {
      (void)Codec<Inbox<Probe>>::decode(inbox_r);
    } catch (const ContractViolation&) {
    }
  }
  return 0;
}
