// Fuzz harness for the transport frame protocol: the 14-byte frame header
// and every wire record that rides in a frame payload (barrier, hello,
// assign, machine-result records) — the bytes a socket peer or a corrupt
// arena can feed the coordinator.
//
// Invariants under arbitrary input bytes:
//   * decoding never crashes, never reads out of bounds, and never
//     allocates unboundedly — a malformed header is rejected with
//     `FrameError`, a truncated record with `FrameError` or
//     `ContractViolation`;
//   * whatever DOES decode round-trips: re-encoding yields the original
//     bytes (headers) or an equal value (records).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "mpc/stats.hpp"
#include "mpc/transport.hpp"

namespace {

using namespace mpcsd;
using namespace mpcsd::mpc;

void check_header(const std::byte* bytes, std::size_t size) {
  try {
    const FrameHeader h = decode_frame_header(bytes, size);
    // A header that decodes must re-encode to the same 14 bytes.
    ByteWriter w;
    encode_frame_header(w, h.tag, h.payload_bytes);
    if (w.bytes().size() != kFrameHeaderBytes ||
        std::memcmp(w.bytes().data(), bytes, kFrameHeaderBytes) != 0) {
      std::abort();
    }
  } catch (const FrameError&) {
    // Malformed header rejected — the contract under test.
  }
}

void check_records(const std::byte* bytes, std::size_t size) {
  try {
    ByteReader r(bytes, size);
    const BarrierRecord b = decode_barrier(r);
    ByteWriter w;
    encode_barrier(w, b);
    ByteReader rr(w.bytes().data(), w.bytes().size());
    const BarrierRecord b2 = decode_barrier(rr);
    if (b2.status != b.status || b2.result_bytes != b.result_bytes) {
      std::abort();
    }
  } catch (const FrameError&) {
  } catch (const ContractViolation&) {
  }

  try {
    ByteReader r(bytes, size);
    const HelloRecord h = decode_hello(r);
    ByteWriter w;
    encode_hello(w, h);
    ByteReader rr(w.bytes().data(), w.bytes().size());
    const HelloRecord h2 = decode_hello(rr);
    if (h2.slot != h.slot || h2.body_affinity != h.body_affinity ||
        h2.round != h.round) {
      std::abort();
    }
  } catch (const FrameError&) {
  } catch (const ContractViolation&) {
  }

  try {
    ByteReader r(bytes, size);
    const AssignRecord a = decode_assign(r);
    ByteWriter w;
    encode_assign(w, a);
    ByteReader rr(w.bytes().data(), w.bytes().size());
    const AssignRecord a2 = decode_assign(rr);
    if (a2.round != a.round || a2.seed != a.seed || a2.begin != a.begin ||
        a2.end != a.end) {
      std::abort();
    }
  } catch (const FrameError&) {
  } catch (const ContractViolation&) {
  }

  try {
    // A stream of machine-result records, the shape of a kResults payload
    // (and of a process-backend arena).
    ByteReader r(bytes, size);
    MachineReport report;
    Bytes stash;
    std::vector<Envelope> outbox;
    while (!r.exhausted()) {
      decode_machine_result(r, &report, &stash, &outbox);
      ByteWriter w;
      encode_machine_result(w, report, stash, outbox);
      MachineReport report2;
      Bytes stash2;
      std::vector<Envelope> outbox2;
      ByteReader rr(w.bytes().data(), w.bytes().size());
      decode_machine_result(rr, &report2, &stash2, &outbox2);
      if (stash2 != stash || outbox2.size() != outbox.size() ||
          !rr.exhausted()) {
        std::abort();
      }
    }
  } catch (const FrameError&) {
  } catch (const ContractViolation&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto* bytes = reinterpret_cast<const std::byte*>(data);
  check_header(bytes, size);
  check_records(bytes, size);
  return 0;
}
