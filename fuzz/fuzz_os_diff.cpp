// Differential fuzz harness for the output-sensitive solver portfolio:
// the banded doubling driver, the bounded probe, and the router prefilter
// must agree with the scalar reference engines on every input — across
// every ISA level the host can run, since the wide-band regime dispatches
// into the SIMD kernel family.
//
// Pinned invariants, any violation aborts:
//   * edit_distance_output_sensitive == seq::edit_distance
//   * edit_distance_output_sensitive_bounded == edit_distance_bounded
//   * edit_distance_myers_banded verdict == edit_distance_banded
//   * prefilter_query lower bound <= the exact distance; equal iff d == 0
//
// Input layout (little-endian):
//   bytes 0-1  base length - 1    (mod 900, walks the 64-symbol boundaries)
//   bytes 2-3  alphabet size - 2  (mod 999, so sigma in 2..1000)
//   byte  4    bounded-probe cap  (mod 128)
//   byte  5    pair mode: even = planted near-duplicate (low nibble edits),
//              odd = independent random second string
//   byte  6+   symbol entropy: seeds the deterministic stream that fills
//              the strings.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <optional>

#include "common/cpu.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "core/router.hpp"
#include "core/workload.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_os.hpp"
#include "seq/myers.hpp"
#include "seq/types.hpp"

namespace {

using namespace mpcsd;

std::uint16_t u16_at(const std::uint8_t* data, std::size_t i) {
  return static_cast<std::uint16_t>(data[i] |
                                    (static_cast<unsigned>(data[i + 1]) << 8));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 7) return 0;
  const std::size_t n = 1 + u16_at(data, 0) % 900;
  const auto sigma = static_cast<Symbol>(2 + u16_at(data, 2) % 999);
  const std::int64_t cap = data[4] % 128;
  const bool planted = data[5] % 2 == 0;
  const std::int64_t edits = data[5] >> 4;

  const std::uint64_t seed =
      hash_bytes(data + 6, size - 6, hash_mix(kFnvOffset, size));
  const auto a = core::random_string(static_cast<std::int64_t>(n), sigma, seed);
  const auto b =
      planted ? core::plant_edits(a, edits, seed + 1, false, sigma).text
              : core::random_string(static_cast<std::int64_t>(n / 2 + 1), sigma,
                                    seed + 2);

  const std::int64_t ref = seq::edit_distance(a, b);
  const std::optional<std::int64_t> ref_bounded =
      seq::edit_distance_bounded(a, b, cap);
  const std::optional<std::int64_t> ref_banded =
      seq::edit_distance_banded(a, b, cap);

  // Prefilter soundness is ISA-independent; check it once.
  const core::QueryPrefilter pf = core::prefilter_query(a, b);
  if (pf.lower_bound > ref) std::abort();
  if (pf.equal != (ref == 0)) std::abort();

  const Isa entry = active_isa();
  for (const Isa level : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (force_isa(level) != level) continue;  // host lacks the level
    if (seq::edit_distance_output_sensitive(a, b) != ref) std::abort();
    if (seq::edit_distance_output_sensitive_bounded(a, b, cap) != ref_bounded) {
      std::abort();
    }
    if (seq::edit_distance_myers_banded(a, b, cap) != ref_banded) std::abort();
  }
  force_isa(entry);
  return 0;
}
