// Differential fuzz harness for the Myers kernel family: every ISA level
// the host can run must agree with the scalar kernel bit for bit — same
// distance, same bounded verdict, same work meter — on adversarial
// (lengths, alphabet, bound, content) combinations.  Lengths are decoded
// so mutation walks them across the 64-symbol word boundaries where lane
// carries and cross-word shifts live; alphabets span 2..1000.
//
// Input layout (little-endian):
//   bytes 0-1  pattern length - 1   (mod 640, so 1..640 crosses words 1..10)
//   bytes 2-3  text length - 1      (mod 640)
//   bytes 4-5  alphabet size - 2    (mod 999, so sigma in 2..1000)
//   byte  6    bound for the k-bounded run (mod 128)
//   byte  7+   symbol entropy: seeds the deterministic stream that fills
//              both strings (and is itself mixed symbol-by-symbol).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <optional>

#include "common/cpu.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "seq/myers.hpp"
#include "seq/types.hpp"

namespace {

using namespace mpcsd;

std::uint16_t u16_at(const std::uint8_t* data, std::size_t i) {
  return static_cast<std::uint16_t>(data[i] |
                                    (static_cast<unsigned>(data[i + 1]) << 8));
}

SymString make_string(std::size_t len, std::uint32_t sigma, Pcg32& rng) {
  SymString s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<Symbol>(rng.next() % sigma));
  }
  return s;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 8) return 0;
  const std::size_t la = 1 + u16_at(data, 0) % 640;
  const std::size_t lb = 1 + u16_at(data, 2) % 640;
  const std::uint32_t sigma = 2 + u16_at(data, 4) % 999;
  const std::int64_t bound = data[6] % 128;

  Pcg32 rng(hash_bytes(data + 7, size - 7, hash_mix(kFnvOffset, size)), 77);
  const auto a = make_string(la, sigma, rng);
  const auto b = make_string(lb, sigma, rng);

  const Isa entry = active_isa();
  force_isa(Isa::kScalar);
  std::uint64_t ref_work = 0;
  const std::int64_t ref = seq::edit_distance_myers(a, b, &ref_work);
  std::uint64_t ref_bwork = 0;
  const std::optional<std::int64_t> ref_bounded =
      seq::edit_distance_myers_bounded(a, b, bound, &ref_bwork);

  for (const Isa level : {Isa::kAvx2, Isa::kAvx512}) {
    if (force_isa(level) != level) continue;  // host lacks the level
    std::uint64_t work = 0;
    if (seq::edit_distance_myers(a, b, &work) != ref) std::abort();
    if (work != ref_work) std::abort();
    std::uint64_t bwork = 0;
    if (seq::edit_distance_myers_bounded(a, b, bound, &bwork) != ref_bounded) {
      std::abort();
    }
    if (bwork != ref_bwork) std::abort();
  }
  force_isa(entry);
  return 0;
}
