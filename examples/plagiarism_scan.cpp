// Near-duplicate detection over token streams.
//
// Documents are modelled as token-id sequences; a plagiarised document is a
// base document with local rewrites (token substitutions/insertions/
// deletions) and possibly reordered paragraphs (block moves).  We score
// every candidate against the source with the 3+eps approximate unit
// directly (each comparison is one "machine"-sized job), flag suspicious
// pairs, and show the edit-script evidence for the best match.
//
//   $ ./examples/plagiarism_scan
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/api.hpp"

int main() {
  using namespace mpcsd;
  const std::int64_t tokens = 3000;
  const auto source = core::random_string(tokens, 20000, 5);  // rich vocabulary

  struct Doc {
    std::string name;
    SymString text;
  };
  std::vector<Doc> corpus;
  corpus.push_back({"verbatim-copy", SymString(source.begin(), source.end())});
  corpus.push_back({"light-paraphrase", core::plant_edits(source, 80, 1, false, 20000).text});
  corpus.push_back({"heavy-paraphrase", core::plant_edits(source, 700, 2, false, 20000).text});
  corpus.push_back({"reordered-paragraphs", core::block_shuffle(source, 375, 3)});
  corpus.push_back({"original-work", core::random_string(tokens, 20000, 77)});

  seq::ApproxEditParams unit;
  unit.epsilon = 0.25;

  std::printf("scanning %zu documents against the source (%lld tokens)\n\n",
              corpus.size(), static_cast<long long>(tokens));
  std::printf("%-24s %12s %12s %10s %12s  %s\n", "document", "approx_ed", "exact_ed",
              "sim%", "unit_work", "verdict");

  double best_sim = -1.0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto approx = seq::approx_edit_distance(source, corpus[i].text, unit);
    const auto exact = seq::edit_distance(source, corpus[i].text);
    const double sim = 100.0 * (1.0 - static_cast<double>(approx.distance) /
                                          static_cast<double>(tokens));
    const char* verdict = sim > 95.0   ? "PLAGIARISM"
                          : sim > 70.0 ? "suspicious"
                                       : "clean";
    std::printf("%-24s %12lld %12lld %9.1f%% %12llu  %s\n", corpus[i].name.c_str(),
                static_cast<long long>(approx.distance),
                static_cast<long long>(exact), sim,
                static_cast<unsigned long long>(approx.work), verdict);
    if (sim > best_sim && corpus[i].name != "verbatim-copy") {
      best_sim = sim;
      best = i;
    }
  }

  // Evidence for the closest non-verbatim match: where did it change?
  std::printf("\nedit-script evidence for '%s' (first 3 changed regions):\n",
              corpus[best].name.c_str());
  const auto script = seq::edit_script(source, corpus[best].text);
  std::int64_t pos = 0;
  int shown = 0;
  std::size_t op_index = 0;
  while (op_index < script.size() && shown < 3) {
    if (script[op_index] == seq::EditOp::kMatch) {
      ++pos;
      ++op_index;
      continue;
    }
    // A run of non-match operations.
    const std::int64_t start = pos;
    std::int64_t subs = 0;
    std::int64_t dels = 0;
    std::int64_t ins = 0;
    while (op_index < script.size() && script[op_index] != seq::EditOp::kMatch) {
      switch (script[op_index]) {
        case seq::EditOp::kSubstitute:
          ++subs;
          ++pos;
          break;
        case seq::EditOp::kDelete:
          ++dels;
          ++pos;
          break;
        case seq::EditOp::kInsert:
          ++ins;
          break;
        default:
          break;
      }
      ++op_index;
    }
    std::printf("  tokens %lld..%lld: %lld substituted, %lld deleted, %lld inserted\n",
                static_cast<long long>(start), static_cast<long long>(pos),
                static_cast<long long>(subs), static_cast<long long>(dels),
                static_cast<long long>(ins));
    ++shown;
  }
  return 0;
}
