// Rank-aggregation with Ulam distance.
//
// Voters rank the same m items (permutations of [m]); Ulam distance — the
// edit distance between permutations — measures how far two rankings are
// (robust to single "item moved" operations, unlike Kendall tau which
// charges every crossed pair).  We use the 1+eps MPC solver to compute a
// pairwise distance matrix and pick the medoid ranking (minimum total
// distance to the others), validating each entry against the exact sparse
// Ulam engine.
//
//   $ ./examples/permutation_ranking
#include <cstdio>
#include <vector>

#include "core/api.hpp"

int main() {
  using namespace mpcsd;
  const std::int64_t items = 2500;

  // A ground-truth ranking plus voters who each move some items around.
  const auto truth = core::random_permutation(items, 7);
  struct Voter {
    const char* name;
    SymString ranking;
  };
  std::vector<Voter> voters;
  auto perturb = [&](std::int64_t moves, std::uint64_t seed) {
    // A "move" = delete an item and reinsert it elsewhere: two edits that
    // keep the ranking a permutation of the same items.
    SymString r(truth.begin(), truth.end());
    Pcg32 rng = derive_stream(seed, 0x11);
    for (std::int64_t i = 0; i < moves; ++i) {
      const auto from = rng.below(static_cast<std::uint32_t>(r.size()));
      const Symbol item = r[from];
      r.erase(r.begin() + from);
      const auto to = rng.below(static_cast<std::uint32_t>(r.size()) + 1);
      r.insert(r.begin() + to, item);
    }
    return r;
  };
  voters.push_back({"careful-voter", perturb(10, 1)});
  voters.push_back({"typical-voter", perturb(80, 2)});
  voters.push_back({"sloppy-voter", perturb(400, 3)});
  voters.push_back({"contrarian", core::random_permutation(items, 1234)});

  ulam_mpc::UlamMpcParams params;
  params.x = 1.0 / 3;
  params.epsilon = 0.5;

  std::printf("pairwise Ulam distances between %zu rankings of %lld items "
              "(MPC 1+eps / exact):\n\n",
              voters.size(), static_cast<long long>(items));
  std::printf("%-16s", "");
  for (const auto& v : voters) std::printf("%-24s", v.name);
  std::printf("\n");

  std::vector<std::int64_t> total(voters.size(), 0);
  for (std::size_t i = 0; i < voters.size(); ++i) {
    std::printf("%-16s", voters[i].name);
    for (std::size_t j = 0; j < voters.size(); ++j) {
      if (j <= i) {
        std::printf("%-24s", j == i ? "0" : "-");
        continue;
      }
      const auto mpc =
          ulam_mpc::ulam_distance_mpc(voters[i].ranking, voters[j].ranking, params);
      const auto exact = seq::ulam_distance(voters[i].ranking, voters[j].ranking);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%lld / %lld",
                    static_cast<long long>(mpc.distance),
                    static_cast<long long>(exact));
      std::printf("%-24s", cell);
      total[i] += mpc.distance;
      total[j] += mpc.distance;
    }
    std::printf("\n");
  }

  std::size_t medoid = 0;
  for (std::size_t i = 1; i < voters.size(); ++i) {
    if (total[i] < total[medoid]) medoid = i;
  }
  std::printf("\nmedoid (consensus candidate): %s (total distance %lld)\n",
              voters[medoid].name, static_cast<long long>(total[medoid]));
  std::printf("distance of medoid to ground truth: %lld\n",
              static_cast<long long>(
                  seq::ulam_distance(voters[medoid].ranking, truth)));
  return 0;
}
