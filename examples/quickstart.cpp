// Quickstart: the two MPC solvers of the paper on synthetic inputs.
//
//   $ ./examples/quickstart
//
// Demonstrates the one-call API, the sandwich guarantees, and the MPC
// execution trace (rounds / machines / memory / work) behind each answer.
#include <cstdio>

#include "core/api.hpp"

int main() {
  using namespace mpcsd;

  // --- Ulam distance (Theorem 4: 1+eps, 2 rounds) ---------------------
  const std::int64_t n = 20000;
  const auto s = core::random_permutation(n, /*seed=*/1);
  const auto t = core::plant_edits(s, /*k=*/400, /*seed=*/2, /*repeat_free=*/true).text;

  ulam_mpc::UlamMpcParams ulam_params;
  ulam_params.x = 1.0 / 3;      // each machine holds Õ(n^{2/3}) memory
  ulam_params.epsilon = 0.5;    // 1.5-approximation, whp
  const auto ulam = ulam_mpc::ulam_distance_mpc(s, t, ulam_params);
  const auto ulam_exact = seq::ulam_distance(s, t);

  std::printf("Ulam distance (n = %lld):\n", static_cast<long long>(n));
  std::printf("  exact     = %lld\n", static_cast<long long>(ulam_exact));
  std::printf("  MPC (1+eps) = %lld   (ratio %.4f, bound %.2f)\n",
              static_cast<long long>(ulam.distance),
              ulam_exact ? static_cast<double>(ulam.distance) / ulam_exact : 1.0,
              1.0 + ulam_params.epsilon);
  std::printf("  trace: %s\n", ulam.trace.summary().c_str());

  // --- Edit distance (Theorem 9: 3+eps, <= 4 rounds) -------------------
  const std::int64_t m = 4000;
  const auto a = core::random_dna(m, 3);
  const auto b = core::plant_edits(a, 120, 4, /*repeat_free=*/false).text;

  edit_mpc::EditMpcParams edit_params;
  edit_params.x = 0.25;
  edit_params.epsilon = 1.0;
  const auto ed = edit_mpc::edit_distance_mpc(a, b, edit_params);
  const auto ed_exact = seq::edit_distance(a, b);

  std::printf("\nEdit distance (DNA, n = %lld):\n", static_cast<long long>(m));
  std::printf("  exact       = %lld\n", static_cast<long long>(ed_exact));
  std::printf("  MPC (3+eps) = %lld   (ratio %.4f, bound %.2f)\n",
              static_cast<long long>(ed.distance),
              ed_exact ? static_cast<double>(ed.distance) / ed_exact : 1.0,
              3.0 + edit_params.epsilon);
  std::printf("  accepted distance guess: %lld after %zu guesses\n",
              static_cast<long long>(ed.accepted_guess), ed.guesses_run);
  std::printf("  trace: %s\n", ed.trace.summary().c_str());
  return 0;
}
