// mpcsd_cli — command-line front end for the library.
//
//   mpcsd_cli ulam <file_a> <file_b> [--x 0.33] [--eps 0.5] [--seed 7]
//   mpcsd_cli edit <file_a> <file_b> [--x 0.25] [--eps 1.0] [--exact-unit]
//   mpcsd_cli batch <ulam|edit> <pairs_file> [--x X] [--eps E] [--seed S]
//                    [--mode {parallel,throughput}] [--router {off,auto,always-seq}]
//   mpcsd_cli demo [--n 20000] [--edits 300]
//   mpcsd_cli --worker <host:port[,host:port...]>
//
// Files are read as whitespace-separated integer symbols if every token is
// numeric, otherwise byte-wise as text.  `ulam` requires repeat-free
// inputs.  Prints the approximate distance, the guarantee band, and the
// MPC trace.
//
// `batch` reads one TAB-separated (s, t) pair per line, runs every pair in
// a single shared plan execution (core::distance_batch), and prints one
// JSON object per query with its distance, attributed rounds, work, and
// communication bytes.  Malformed lines abort with a nonzero exit.
// `--trace-out <file> [--trace-format {jsonl,chrome}]` (any solver mode)
// attaches the observability recorder to every round, stage, solver, and
// batch pass and writes the event stream to the file: `chrome` (the
// default) produces a Chrome trace-event JSON openable in chrome://tracing
// or https://ui.perfetto.dev, `jsonl` one JSON object per event per line.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/api.hpp"
#include "core/tsv.hpp"
#include "mpc/backend.hpp"
#include "mpc/transport_socket.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"

namespace {

using namespace mpcsd;

std::string load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

SymString load_symbols(const std::string& path) {
  return core::parse_symbols(load_file(path));
}

double flag_value(int argc, char** argv, const char* name, double fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

const char* flag_string(int argc, char** argv, const char* name,
                        const char* fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Parses `--backend {thread,process,socket}` (default: auto, which honours
/// the MPCSD_BACKEND environment variable).  Exits with a message on an
/// unrecognized value.
mpc::BackendKind flag_backend(int argc, char** argv) {
  const char* value = flag_string(argc, argv, "--backend", nullptr);
  if (value == nullptr) return mpc::BackendKind::kAuto;
  const auto kind = mpc::backend_from_string(value);
  if (!kind.has_value()) {
    std::fprintf(
        stderr,
        "error: --backend must be 'thread', 'process', or 'socket', got '%s'\n",
        value);
    std::exit(2);
  }
  return *kind;
}

/// Parses `--router {off,auto,always-seq}` (default: resolve the
/// MPCSD_ROUTER environment variable; unset means off).  Exits with a
/// message on an unrecognized value.
core::RouterPolicy flag_router(int argc, char** argv) {
  const char* value = flag_string(argc, argv, "--router", nullptr);
  if (value == nullptr) return core::RouterPolicy::kDefault;
  const auto policy = core::router_policy_from_string(value);
  if (!policy.has_value()) {
    std::fprintf(
        stderr,
        "error: --router must be 'off', 'auto', or 'always-seq', got '%s'\n",
        value);
    std::exit(2);
  }
  return *policy;
}

/// Parses `--mode {parallel,throughput}` for batch runs (default:
/// parallel, the paper-literal semantics).
core::BatchMode flag_batch_mode(int argc, char** argv) {
  const char* value = flag_string(argc, argv, "--mode", nullptr);
  if (value == nullptr) return core::BatchMode::kParallelGuess;
  if (std::strcmp(value, "parallel") == 0) return core::BatchMode::kParallelGuess;
  if (std::strcmp(value, "throughput") == 0) return core::BatchMode::kThroughput;
  std::fprintf(stderr,
               "error: --mode must be 'parallel' or 'throughput', got '%s'\n",
               value);
  std::exit(2);
}

/// The CLI's trace attachment: parses `--trace-out` / `--trace-format`,
/// owns the recorder + sink for the run, and writes the file at the end.
class TraceOutput {
 public:
  /// Returns false on an invalid --trace-format value.
  bool init(int argc, char** argv) {
    const char* path = flag_string(argc, argv, "--trace-out", nullptr);
    if (path == nullptr) return true;
    path_ = path;
    const std::string format = flag_string(argc, argv, "--trace-format", "chrome");
    if (format == "chrome") {
      chrome_ = std::make_shared<obs::ChromeTraceSink>();
      recorder_.add_sink(chrome_);
    } else if (format == "jsonl") {
      jsonl_ = std::make_shared<obs::JsonlSink>();
      recorder_.add_sink(jsonl_);
    } else {
      std::fprintf(stderr,
                   "error: --trace-format must be 'jsonl' or 'chrome', got '%s'\n",
                   format.c_str());
      return false;
    }
    return true;
  }

  /// The recorder to hand to solver/batch params (null when not tracing).
  [[nodiscard]] obs::Recorder* recorder() noexcept {
    return path_.empty() ? nullptr : &recorder_;
  }

  /// Writes the collected trace; returns false (with a message) on IO error.
  bool write() {
    if (path_.empty()) return true;
    recorder_.flush();
    const bool ok = chrome_ != nullptr ? chrome_->write_file(path_)
                                       : jsonl_->write_file(path_);
    if (!ok) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n", path_.c_str());
      return false;
    }
    const std::size_t events =
        chrome_ != nullptr ? chrome_->event_count() : jsonl_->event_count();
    std::fprintf(stderr, "trace: %zu events written to %s\n", events,
                 path_.c_str());
    return true;
  }

 private:
  obs::Recorder recorder_;
  std::shared_ptr<obs::ChromeTraceSink> chrome_;
  std::shared_ptr<obs::JsonlSink> jsonl_;
  std::string path_;
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mpcsd_cli ulam <file_a> <file_b> [--x X] [--eps E] [--seed S]\n"
               "  mpcsd_cli edit <file_a> <file_b> [--x X] [--eps E] [--exact-unit]\n"
               "  mpcsd_cli batch <ulam|edit> <pairs_file> [--x X] [--eps E] [--seed S]\n"
               "      [--mode {parallel,throughput}] [--router {off,auto,always-seq}]\n"
               "  mpcsd_cli demo [--n N] [--edits K]\n"
               "  mpcsd_cli --worker <host:port[,host:port...]>\n"
               "common flags:\n"
               "  --backend {thread,process,socket}   execution backend for the\n"
               "      machine bodies (default: thread, or the MPCSD_BACKEND env\n"
               "      var); 'process' runs bodies in forked, memory-isolated\n"
               "      workers; 'socket' streams results over localhost TCP frames\n"
               "  --router {off,auto,always-seq}   query router for edit batches in\n"
               "      throughput mode (default: off, or the MPCSD_ROUTER env var);\n"
               "      'auto' retires near-duplicates on the sequential fast path\n"
               "  --trace-out <file> [--trace-format {jsonl,chrome}]   write an\n"
               "      observability trace (chrome format opens in ui.perfetto.dev)\n");
  return 2;
}

// `batch` subcommand: TAB-separated (s, t) per line -> JSON lines.
int run_batch(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string algo = argv[2];
  core::BatchRequest request;
  if (algo == "ulam") {
    request.algorithm = core::BatchAlgorithm::kUlam;
    request.ulam.x = flag_value(argc, argv, "--x", request.ulam.x);
    request.ulam.epsilon = flag_value(argc, argv, "--eps", request.ulam.epsilon);
    request.ulam.seed =
        static_cast<std::uint64_t>(flag_value(argc, argv, "--seed", 7));
    request.ulam.backend = flag_backend(argc, argv);
  } else if (algo == "edit") {
    request.algorithm = core::BatchAlgorithm::kEdit;
    request.edit.x = flag_value(argc, argv, "--x", request.edit.x);
    request.edit.epsilon = flag_value(argc, argv, "--eps", request.edit.epsilon);
    request.edit.seed =
        static_cast<std::uint64_t>(flag_value(argc, argv, "--seed", 7));
    request.edit.backend = flag_backend(argc, argv);
    request.mode = flag_batch_mode(argc, argv);
    request.router = flag_router(argc, argv);
  } else {
    std::fprintf(stderr, "error: batch algorithm must be 'ulam' or 'edit'\n");
    return 2;
  }

  const std::string path = argv[3];
  core::TsvError parse_error;
  auto queries =
      core::parse_batch_tsv(load_file(path), request.algorithm, &parse_error);
  if (!queries.has_value()) {
    if (parse_error.line == 0) {
      std::fprintf(stderr, "error: '%s': %s\n", path.c_str(),
                   parse_error.message.c_str());
    } else {
      std::fprintf(stderr, "error: %s:%zu: %s\n", path.c_str(),
                   parse_error.line, parse_error.message.c_str());
    }
    return 2;
  }
  request.queries = std::move(*queries);

  TraceOutput trace;
  if (!trace.init(argc, argv)) return 2;
  request.recorder = trace.recorder();

  const auto result = core::distance_batch(request);
  for (std::size_t q = 0; q < result.queries.size(); ++q) {
    const auto& qr = result.queries[q];
    std::uint64_t work = 0;
    std::uint64_t comm = 0;
    for (const auto& round : qr.trace.rounds()) {
      work += round.total_work;
      comm += round.total_comm_bytes;
    }
    std::printf("{\"query\":%zu,\"distance\":%lld,\"accepted_guess\":%lld,"
                "\"rounds\":%zu,\"work\":%llu,\"comm_bytes\":%llu,"
                "\"memory_cap_bytes\":%llu}\n",
                q, static_cast<long long>(qr.distance),
                static_cast<long long>(qr.accepted_guess),
                qr.trace.round_count(),
                static_cast<unsigned long long>(work),
                static_cast<unsigned long long>(comm),
                static_cast<unsigned long long>(qr.memory_cap_bytes));
  }
  std::fprintf(stderr, "batch: %zu queries in %zu shared rounds\n",
               result.queries.size(), result.trace.round_count());
  return trace.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];

  if (mode == "--worker") {
#if defined(__linux__)
    if (argc < 3) {
      std::fprintf(stderr,
                   "error: --worker needs a coordinator list "
                   "(host:port[,host:port...])\n");
      return 2;
    }
    try {
      const auto coordinators = mpc::parse_host_port_list(argv[2]);
      return mpc::run_socket_worker(coordinators, stderr);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
#else
    std::fprintf(stderr, "error: --worker requires Linux\n");
    return 2;
#endif
  }

  if (mode == "demo") {
    const auto n = static_cast<std::int64_t>(flag_value(argc, argv, "--n", 20000));
    const auto k = static_cast<std::int64_t>(flag_value(argc, argv, "--edits", 300));
    const auto s = core::random_permutation(n, 1);
    const auto t = core::plant_edits(s, k, 2, true).text;
    ulam_mpc::UlamMpcParams demo_params;
    demo_params.backend = flag_backend(argc, argv);
    const auto result = ulam_mpc::ulam_distance_mpc(s, t, demo_params);
    const auto exact = seq::ulam_distance(s, t);
    std::printf("demo: n=%lld planted=%lld exact=%lld mpc=%lld\n%s",
                static_cast<long long>(n), static_cast<long long>(k),
                static_cast<long long>(exact), static_cast<long long>(result.distance),
                result.trace.summary().c_str());
    return 0;
  }

  if (mode == "batch") return run_batch(argc, argv);

  if (argc < 4) return usage();
  const auto a = load_symbols(argv[2]);
  const auto b = load_symbols(argv[3]);
  std::printf("|a| = %zu, |b| = %zu\n", a.size(), b.size());

  if (mode == "ulam") {
    if (!seq::is_repeat_free(a) || !seq::is_repeat_free(b)) {
      std::fprintf(stderr, "error: ulam mode requires repeat-free inputs\n");
      return 2;
    }
    ulam_mpc::UlamMpcParams params;
    params.x = flag_value(argc, argv, "--x", params.x);
    params.epsilon = flag_value(argc, argv, "--eps", params.epsilon);
    params.seed = static_cast<std::uint64_t>(flag_value(argc, argv, "--seed", 7));
    params.backend = flag_backend(argc, argv);
    TraceOutput trace;
    if (!trace.init(argc, argv)) return 2;
    params.recorder = trace.recorder();
    const auto result = ulam_mpc::ulam_distance_mpc(a, b, params);
    std::printf("ulam distance (1+eps approx): %lld  [guarantee: within %.2fx whp]\n",
                static_cast<long long>(result.distance), 1.0 + params.epsilon);
    std::printf("%s", result.trace.summary().c_str());
    return trace.write() ? 0 : 1;
  }

  if (mode == "edit") {
    edit_mpc::EditMpcParams params;
    params.x = flag_value(argc, argv, "--x", params.x);
    params.epsilon = flag_value(argc, argv, "--eps", params.epsilon);
    if (has_flag(argc, argv, "--exact-unit")) {
      params.unit = edit_mpc::DistanceUnit::kExactBanded;
    }
    params.backend = flag_backend(argc, argv);
    TraceOutput trace;
    if (!trace.init(argc, argv)) return 2;
    params.recorder = trace.recorder();
    const auto result = edit_mpc::edit_distance_mpc(a, b, params);
    std::printf("edit distance (3+eps approx): %lld  [guarantee: within %.2fx]\n",
                static_cast<long long>(result.distance), 3.0 + params.epsilon);
    std::printf("accepted guess %lld after %zu guesses\n",
                static_cast<long long>(result.accepted_guess), result.guesses_run);
    std::printf("%s", result.trace.summary().c_str());
    return trace.write() ? 0 : 1;
  }
  return usage();
}
