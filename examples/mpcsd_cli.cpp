// mpcsd_cli — command-line front end for the library.
//
//   mpcsd_cli ulam <file_a> <file_b> [--x 0.33] [--eps 0.5] [--seed 7]
//   mpcsd_cli edit <file_a> <file_b> [--x 0.25] [--eps 1.0] [--exact-unit]
//   mpcsd_cli demo [--n 20000] [--edits 300]
//
// Files are read as whitespace-separated integer symbols if every token is
// numeric, otherwise byte-wise as text.  `ulam` requires repeat-free
// inputs.  Prints the approximate distance, the guarantee band, and the
// MPC trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/api.hpp"

namespace {

using namespace mpcsd;

SymString load_symbols(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // Numeric mode: every whitespace-separated token is an integer.
  std::istringstream tokens(content);
  SymString numeric;
  std::string tok;
  bool all_numeric = true;
  while (tokens >> tok) {
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      all_numeric = false;
      break;
    }
    numeric.push_back(static_cast<Symbol>(v));
  }
  if (all_numeric && !numeric.empty()) return numeric;
  return to_symbols(content);
}

double flag_value(int argc, char** argv, const char* name, double fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mpcsd_cli ulam <file_a> <file_b> [--x X] [--eps E] [--seed S]\n"
               "  mpcsd_cli edit <file_a> <file_b> [--x X] [--eps E] [--exact-unit]\n"
               "  mpcsd_cli demo [--n N] [--edits K]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];

  if (mode == "demo") {
    const auto n = static_cast<std::int64_t>(flag_value(argc, argv, "--n", 20000));
    const auto k = static_cast<std::int64_t>(flag_value(argc, argv, "--edits", 300));
    const auto s = core::random_permutation(n, 1);
    const auto t = core::plant_edits(s, k, 2, true).text;
    const auto result = ulam_mpc::ulam_distance_mpc(s, t);
    const auto exact = seq::ulam_distance(s, t);
    std::printf("demo: n=%lld planted=%lld exact=%lld mpc=%lld\n%s",
                static_cast<long long>(n), static_cast<long long>(k),
                static_cast<long long>(exact), static_cast<long long>(result.distance),
                result.trace.summary().c_str());
    return 0;
  }

  if (argc < 4) return usage();
  const auto a = load_symbols(argv[2]);
  const auto b = load_symbols(argv[3]);
  std::printf("|a| = %zu, |b| = %zu\n", a.size(), b.size());

  if (mode == "ulam") {
    if (!seq::is_repeat_free(a) || !seq::is_repeat_free(b)) {
      std::fprintf(stderr, "error: ulam mode requires repeat-free inputs\n");
      return 2;
    }
    ulam_mpc::UlamMpcParams params;
    params.x = flag_value(argc, argv, "--x", params.x);
    params.epsilon = flag_value(argc, argv, "--eps", params.epsilon);
    params.seed = static_cast<std::uint64_t>(flag_value(argc, argv, "--seed", 7));
    const auto result = ulam_mpc::ulam_distance_mpc(a, b, params);
    std::printf("ulam distance (1+eps approx): %lld  [guarantee: within %.2fx whp]\n",
                static_cast<long long>(result.distance), 1.0 + params.epsilon);
    std::printf("%s", result.trace.summary().c_str());
    return 0;
  }

  if (mode == "edit") {
    edit_mpc::EditMpcParams params;
    params.x = flag_value(argc, argv, "--x", params.x);
    params.epsilon = flag_value(argc, argv, "--eps", params.epsilon);
    if (has_flag(argc, argv, "--exact-unit")) {
      params.unit = edit_mpc::DistanceUnit::kExactBanded;
    }
    const auto result = edit_mpc::edit_distance_mpc(a, b, params);
    std::printf("edit distance (3+eps approx): %lld  [guarantee: within %.2fx]\n",
                static_cast<long long>(result.distance), 3.0 + params.epsilon);
    std::printf("accepted guess %lld after %zu guesses\n",
                static_cast<long long>(result.accepted_guess), result.guesses_run);
    std::printf("%s", result.trace.summary().c_str());
    return 0;
  }
  return usage();
}
