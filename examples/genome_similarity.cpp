// Genome similarity screening — the paper's motivating workload ("a human
// genome consists of almost three billion base pairs").
//
// We simulate a reference chromosome region and a panel of mutated donors
// (SNPs + indels + a structural rearrangement), then rank the donors by
// similarity with the 3+eps MPC edit-distance solver, cross-checking
// against exact distances and showing the cluster resources each query
// would need.
//
//   $ ./examples/genome_similarity
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/api.hpp"

namespace {

using namespace mpcsd;

std::string describe(double ratio) {
  if (ratio < 0.002) return "same individual?";
  if (ratio < 0.01) return "close relative";
  if (ratio < 0.05) return "same population";
  return "distant";
}

}  // namespace

int main() {
  const std::int64_t region = 2000;  // base pairs in the screened region
  const auto reference = core::random_dna(region, 42);

  struct Donor {
    std::string name;
    SymString genome;
  };
  std::vector<Donor> donors;
  donors.push_back({"donor-A (12 SNPs)",
                    core::plant_edits(reference, 12, 1, false).text});
  donors.push_back({"donor-B (160 SNPs+indels)",
                    core::plant_edits(reference, 160, 2, false).text});
  donors.push_back({"donor-C (700 mutations)",
                    core::plant_edits(reference, 350, 3, false).text});
  // Structural rearrangement: a large inversion-like block move.
  donors.push_back({"donor-D (rearranged)", core::block_shuffle(reference, 250, 4)});
  donors.push_back({"unrelated", core::random_dna(region, 99)});

  std::printf("screening %zu donors against a %lld bp reference region\n\n",
              donors.size(), static_cast<long long>(region));
  std::printf("%-28s %10s %10s %8s %9s %10s  %s\n", "donor", "exact", "mpc(3+eps)",
              "ratio", "machines", "rounds", "assessment");

  edit_mpc::EditMpcParams params;
  params.x = 0.25;
  params.epsilon = 2.0;
  params.eps_prime_floor = 0.3;  // coarser grids: demo-scale constants

  struct Row {
    std::string name;
    std::int64_t mpc;
  };
  std::vector<Row> ranking;
  for (const Donor& d : donors) {
    const auto exact = seq::edit_distance(reference, d.genome);
    const auto result = edit_mpc::edit_distance_mpc(reference, d.genome, params);
    const double mutation_rate =
        static_cast<double>(result.distance) / static_cast<double>(region);
    std::printf("%-28s %10lld %10lld %8.3f %9zu %10zu  %s\n", d.name.c_str(),
                static_cast<long long>(exact), static_cast<long long>(result.distance),
                exact ? static_cast<double>(result.distance) / exact : 1.0,
                result.trace.max_machines(), result.trace.round_count(),
                describe(mutation_rate).c_str());
    ranking.push_back({d.name, result.distance});
  }

  std::sort(ranking.begin(), ranking.end(),
            [](const Row& a, const Row& b) { return a.mpc < b.mpc; });
  std::printf("\nsimilarity ranking (by MPC distance):\n");
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, ranking[i].name.c_str());
  }
  return 0;
}
